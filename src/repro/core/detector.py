"""The CC-Hunter facade: attach detectors to a machine and collect verdicts.

Usage::

    machine = Machine()
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)
    hunter.audit(AuditUnit.DIVIDER, core=0)   # at most two units at a time
    ... spawn processes ...
    machine.run_quanta(16)
    report = hunter.report()

Per OS quantum, the hunter drives the modeled CC-auditor hardware —
density counts flow through the monitor slots' saturating accumulators and
histogram buffers; conflict-miss records flow through the alternating
vector registers — and runs the per-window analyses. ``report()`` runs
the cross-window steps (recurrence clustering for burst monitors) and
returns the final verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.config import LIKELIHOOD_RATIO_THRESHOLD
from repro.core.autocorr import autocorrelogram
from repro.core.burst import BurstAnalysis, analyze_histogram
from repro.core.clustering import analyze_recurrence
from repro.core.density import default_delta_t
from repro.core.event_train import dominant_pair_series
from repro.core.oscillation import OscillationAnalysis, analyze_autocorrelogram
from repro.core.report import DetectionReport, UnitVerdict
from repro.errors import DetectionError
from repro.hardware.auditor import CCAuditor


class AuditUnit(Enum):
    """Hardware units CC-Hunter knows how to audit."""

    MEMORY_BUS = "membus"
    DIVIDER = "divider"
    MULTIPLIER = "multiplier"
    CACHE = "cache"


@dataclass
class _BurstMonitor:
    unit: AuditUnit
    core: Optional[int]
    slot_index: int
    dt: int
    histograms: List[np.ndarray] = field(default_factory=list)
    analyses: List[BurstAnalysis] = field(default_factory=list)

    @property
    def name(self) -> str:
        if self.core is not None:
            return f"{self.unit.value}(core {self.core})"
        return self.unit.value


@dataclass
class _CacheMonitor:
    slot_index: int
    analyses: List[OscillationAnalysis] = field(default_factory=list)
    #: Quantum index each analysis came from (parallel to ``analyses``).
    analysis_quanta: List[int] = field(default_factory=list)
    windows_analyzed: int = 0
    last_acf: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        return AuditUnit.CACHE.value


class CCHunter:
    """Covert-timing-channel detector bound to a simulated machine."""

    def __init__(
        self,
        machine,
        auditor: Optional[CCAuditor] = None,
        lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
        window_fraction: float = 1.0,
        max_lag: int = 1000,
        min_train_events: int = 64,
        min_peak_height: float = 0.45,
    ):
        if not 0 < window_fraction <= 1.0:
            raise DetectionError(
                f"window fraction must be in (0, 1], got {window_fraction}"
            )
        self.machine = machine
        self.auditor = auditor or CCAuditor()
        self.lr_threshold = lr_threshold
        self.window_fraction = window_fraction
        self.max_lag = max_lag
        self.min_train_events = min_train_events
        self.min_peak_height = min_peak_height
        self._burst_monitors: List[_BurstMonitor] = []
        self._cache_monitor: Optional[_CacheMonitor] = None
        machine.on_quantum_end(self._on_quantum_end)

    # ------------------------------------------------------------------ setup

    @property
    def monitors_in_use(self) -> int:
        return len(self._burst_monitors) + (1 if self._cache_monitor else 0)

    def audit(
        self,
        unit: AuditUnit,
        core: Optional[int] = None,
        dt: Optional[int] = None,
    ) -> None:
        """Point a CC-auditor monitor slot at a hardware unit.

        The auditor supports at most two concurrently audited units (the
        paper's hardware tradeoff); a third ``audit`` call raises. The
        divider is per-core, so ``core`` is required for it.
        """
        slot_index = self.auditor.free_slot_index()
        if unit is AuditUnit.MEMORY_BUS:
            chosen_dt = dt or default_delta_t("membus")
            self.auditor.program(slot_index, unit.value, chosen_dt)
            self._burst_monitors.append(
                _BurstMonitor(unit, None, slot_index, chosen_dt)
            )
        elif unit in (AuditUnit.DIVIDER, AuditUnit.MULTIPLIER):
            if core is None:
                raise DetectionError(f"{unit.value} audit needs a core index")
            chosen_dt = dt or default_delta_t(unit.value)
            self.auditor.program(slot_index, f"{unit.value}{core}", chosen_dt)
            self._burst_monitors.append(
                _BurstMonitor(unit, core, slot_index, chosen_dt)
            )
        elif unit is AuditUnit.CACHE:
            if self._cache_monitor is not None:
                raise DetectionError("cache is already being audited")
            self.auditor.program(
                slot_index, unit.value, self.machine.quantum_cycles
            )
            self._cache_monitor = _CacheMonitor(slot_index)
        else:  # pragma: no cover - exhaustive enum
            raise DetectionError(f"unknown audit unit {unit!r}")

    # ------------------------------------------------------------ per quantum

    def _tap_for(self, monitor: _BurstMonitor):
        if monitor.unit is AuditUnit.MEMORY_BUS:
            return self.machine.bus_lock_tap
        if monitor.unit is AuditUnit.MULTIPLIER:
            return self.machine.multiplier_wait_tap_for(monitor.core)
        return self.machine.divider_wait_tap_for(monitor.core)

    def _on_quantum_end(self, quantum: int, t0: int, t1: int) -> None:
        for monitor in self._burst_monitors:
            counts = self._tap_for(monitor).density_counts(monitor.dt, t0, t1)
            slot = self.auditor.slot(monitor.slot_index)
            slot.ingest_window_counts(counts)
            hist = slot.read_and_reset()
            monitor.histograms.append(hist)
            monitor.analyses.append(
                analyze_histogram(hist, lr_threshold=self.lr_threshold)
            )
        if self._cache_monitor is not None:
            self._analyze_cache_windows(quantum, t0, t1)

    def _analyze_cache_windows(self, quantum: int, t0: int, t1: int) -> None:
        monitor = self._cache_monitor
        width = max(1, int(round((t1 - t0) * self.window_fraction)))
        start = t0
        while start < t1:
            end = min(start + width, t1)
            _times, reps, vics = self.machine.cache_miss_tap.records_in(
                start, end
            )
            # Route the records through the auditor's vector registers (the
            # hardware path software actually reads).
            self.auditor.vectors.record_batch(reps, vics)
            drained_reps, drained_vics = self.auditor.vectors.drain()
            monitor.windows_analyzed += 1
            # Covert cache communication is a ping-pong between ONE pair of
            # contexts; the analysis takes the dominant cross-context
            # pair's events (both replacement directions, labeled 0/1, the
            # paper's 'S→T'/'T→S') and autocorrelates that series. Other
            # contexts' conflicts and same-context evictions carry no
            # covert-pair information.
            labels, _idx, _pair = dominant_pair_series(
                drained_reps,
                drained_vics,
                self.auditor.config.context_id_bits,
            )
            both_directions = (
                labels.size >= self.min_train_events
                and 4 <= int(labels.sum()) <= labels.size - 4
            )
            if both_directions:
                acf = autocorrelogram(labels, self.max_lag)
                monitor.last_acf = acf
                monitor.analyses.append(
                    analyze_autocorrelogram(
                        acf, min_peak_height=self.min_peak_height
                    )
                )
                monitor.analysis_quanta.append(quantum)
            start = end

    # --------------------------------------------------------------- verdicts

    def report(self, min_oscillating_windows: int = 1) -> DetectionReport:
        """Run the cross-window analyses and return the final verdicts."""
        verdicts = []
        for monitor in self._burst_monitors:
            verdicts.append(self._burst_verdict(monitor))
        if self._cache_monitor is not None:
            verdicts.append(
                self._cache_verdict(self._cache_monitor, min_oscillating_windows)
            )
        return DetectionReport(verdicts=tuple(verdicts))

    def _burst_verdict(self, monitor: _BurstMonitor) -> UnitVerdict:
        if not monitor.histograms:
            return UnitVerdict(
                unit=monitor.name,
                method="burst",
                detected=False,
                quanta_analyzed=0,
                notes=("no quanta observed",),
            )
        recurrence = analyze_recurrence(
            monitor.histograms, lr_threshold=self.lr_threshold
        )
        best_lr = max(
            (a.likelihood_ratio for a in recurrence.burst_analyses),
            default=0.0,
        )
        detected = bool(recurrence.recurrent and recurrence.burst_clusters)
        return UnitVerdict(
            unit=monitor.name,
            method="burst",
            detected=detected,
            quanta_analyzed=len(monitor.histograms),
            max_likelihood_ratio=best_lr,
            recurrent=recurrence.recurrent,
            burst_window_fraction=recurrence.burst_window_fraction,
        )

    def _cache_verdict(
        self, monitor: _CacheMonitor, min_oscillating_windows: int
    ) -> UnitVerdict:
        significant = [a for a in monitor.analyses if a.significant]
        max_peak = max((a.max_peak for a in monitor.analyses), default=0.0)
        periods = [a.dominant_period for a in significant if a.dominant_period]
        detected = len(significant) >= min_oscillating_windows
        return UnitVerdict(
            unit=monitor.name,
            method="oscillation",
            detected=detected,
            quanta_analyzed=monitor.windows_analyzed,
            oscillating_windows=len(significant),
            max_peak=max_peak,
            dominant_period=float(np.median(periods)) if periods else None,
        )

    # ------------------------------------------------------------- latency

    def first_detection_quantum(
        self, unit: AuditUnit, core: Optional[int] = None
    ) -> Optional[int]:
        """Index of the first quantum at which the unit's verdict fires.

        For oscillation monitoring this is the first significant window's
        quantum; for burst monitoring, the earliest prefix of per-quantum
        histograms whose recurrence analysis detects (recomputed
        incrementally — the analysis is milliseconds per call). Returns
        None if the session never detects. Useful as a time-to-detection
        metric: how long a channel runs before CC-Hunter calls it.
        """
        if unit is AuditUnit.CACHE:
            if self._cache_monitor is None:
                raise DetectionError("cache is not being audited")
            monitor = self._cache_monitor
            for analysis, quantum in zip(
                monitor.analyses, monitor.analysis_quanta
            ):
                if analysis.significant:
                    return quantum
            return None
        for monitor in self._burst_monitors:
            if monitor.unit is unit and (core is None or monitor.core == core):
                for upto in range(1, len(monitor.histograms) + 1):
                    recurrence = analyze_recurrence(
                        monitor.histograms[:upto],
                        lr_threshold=self.lr_threshold,
                    )
                    if recurrence.recurrent and recurrence.burst_clusters:
                        return upto - 1
                return None
        raise DetectionError(f"{unit.value} is not being audited")

    # ------------------------------------------------------------- inspection

    def burst_histograms(self, unit: AuditUnit, core: Optional[int] = None):
        """Per-quantum histograms recorded for a burst-audited unit."""
        for monitor in self._burst_monitors:
            if monitor.unit is unit and (core is None or monitor.core == core):
                return list(monitor.histograms)
        raise DetectionError(f"{unit.value} is not being audited")

    def cache_analyses(self) -> List[OscillationAnalysis]:
        """Per-window oscillation analyses for the cache monitor."""
        if self._cache_monitor is None:
            raise DetectionError("cache is not being audited")
        return list(self._cache_monitor.analyses)
