"""The CC-Hunter facade: attach detectors to a machine and collect verdicts.

Usage::

    machine = Machine()
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)
    hunter.audit(AuditUnit.DIVIDER, core=0)   # at most two units at a time
    ... spawn processes ...
    machine.run_quanta(16)
    report = hunter.report()

CCHunter is a thin facade over the streaming pipeline: a
:class:`~repro.pipeline.source.MachineEventSource` reads the machine's
taps each OS quantum — density counts flow through the modeled
CC-auditor's monitor slots (saturating accumulators + histogram
buffers), conflict-miss records through its alternating vector
registers — and a :class:`~repro.pipeline.session.DetectionSession`
folds each observation into per-unit incremental analyzers. Verdicts
are therefore available *during* the run (``current_verdicts()``,
verdict sinks), not just from the terminal ``report()`` call; the
session can also be driven directly via ``push_quantum()`` by non-sim
sources.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, List, Optional, Tuple

from repro.config import LIKELIHOOD_RATIO_THRESHOLD
from repro.core.density import default_delta_t
from repro.core.oscillation import OscillationAnalysis
from repro.core.report import DetectionReport
from repro.errors import DetectionError
from repro.hardware.auditor import CCAuditor
from repro.obs.metrics import MetricsRegistry, get_default
from repro.pipeline.analyzers import BurstAnalyzer, OscillationAnalyzer
from repro.pipeline.session import DetectionSession
from repro.pipeline.sinks import VerdictSink
from repro.pipeline.source import MachineEventSource, QuantumObservation


class AuditUnit(Enum):
    """Hardware units CC-Hunter knows how to audit."""

    MEMORY_BUS = "membus"
    DIVIDER = "divider"
    MULTIPLIER = "multiplier"
    CACHE = "cache"


class CCHunter:
    """Covert-timing-channel detector bound to a simulated machine."""

    def __init__(
        self,
        machine,
        auditor: Optional[CCAuditor] = None,
        lr_threshold: float = LIKELIHOOD_RATIO_THRESHOLD,
        window_fraction: float = 1.0,
        max_lag: int = 1000,
        min_train_events: int = 64,
        min_peak_height: float = 0.45,
        sinks: Iterable[VerdictSink] = (),
        track_detection_latency: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        injectors: Iterable = (),
        capture_evidence: bool = False,
        evidence_capacity: Optional[int] = None,
        columnar: bool = True,
    ):
        if not 0 < window_fraction <= 1.0:
            raise DetectionError(
                f"window fraction must be in (0, 1], got {window_fraction}"
            )
        self.machine = machine
        self.auditor = auditor or CCAuditor()
        self.lr_threshold = lr_threshold
        self.window_fraction = window_fraction
        self.max_lag = max_lag
        self.min_train_events = min_train_events
        self.min_peak_height = min_peak_height
        #: When set, every audited unit keeps a bounded forensic
        #: EvidenceBundle (docs/FORENSICS.md); verdicts are identical
        #: with capture on or off.
        self.capture_evidence = capture_evidence
        self.evidence_capacity = evidence_capacity
        self.metrics = metrics if metrics is not None else get_default()
        # ``columnar`` selects the tap read strategy (hot path vs legacy
        # full-history reference; bit-identical — see the parity tests).
        self.source = MachineEventSource(
            machine,
            auditor=self.auditor,
            metrics=self.metrics,
            columnar=columnar,
        )
        self.session = DetectionSession(
            sinks=sinks,
            track_detection_latency=track_detection_latency,
            metrics=self.metrics,
        )
        # With fault injectors the session listens to a perturbing
        # wrapper instead of the raw machine source (robustness drills;
        # see repro.faults). ``self.source`` stays the machine source —
        # audit() keeps programming channels on it directly.
        injectors = list(injectors)
        feed = self.source
        if injectors:
            from repro.faults.source import FaultInjectingSource

            feed = FaultInjectingSource(
                self.source, injectors, metrics=self.metrics
            )
        self.feed = feed
        self.feed.subscribe(self.session)
        #: (unit, core, channel name) per audit call, for facade lookups.
        self._audits: List[Tuple[AuditUnit, Optional[int], str]] = []

    # ------------------------------------------------------------------ setup

    @property
    def monitors_in_use(self) -> int:
        return len(self._audits)

    def audit(
        self,
        unit: AuditUnit,
        core: Optional[int] = None,
        dt: Optional[int] = None,
    ) -> None:
        """Point a CC-auditor monitor slot at a hardware unit.

        The auditor supports at most two concurrently audited units (the
        paper's hardware tradeoff); a third ``audit`` call raises. The
        divider is per-core, so ``core`` is required for it.
        """
        slot_index = self.auditor.free_slot_index()
        if unit is AuditUnit.CACHE:
            if any(u is AuditUnit.CACHE for u, _c, _n in self._audits):
                raise DetectionError("cache is already being audited")
            self.auditor.program(
                slot_index, unit.value, self.machine.quantum_cycles
            )
            self.source.enable_conflict_channel(unit.value)
            self.session.add_analyzer(
                OscillationAnalyzer(
                    unit=unit.value,
                    window_fraction=self.window_fraction,
                    max_lag=self.max_lag,
                    min_train_events=self.min_train_events,
                    min_peak_height=self.min_peak_height,
                    context_id_bits=self.auditor.config.context_id_bits,
                    metrics=self.metrics,
                    capture_evidence=self.capture_evidence,
                    evidence_capacity=self.evidence_capacity,
                )
            )
            self._audits.append((unit, None, unit.value))
            return
        if unit is AuditUnit.MEMORY_BUS:
            name = unit.value
            tap = self.machine.bus_lock_tap
            chosen_dt = dt or default_delta_t("membus")
            self.auditor.program(slot_index, name, chosen_dt)
        elif unit in (AuditUnit.DIVIDER, AuditUnit.MULTIPLIER):
            if core is None:
                raise DetectionError(f"{unit.value} audit needs a core index")
            name = f"{unit.value}(core {core})"
            tap = (
                self.machine.multiplier_wait_tap_for(core)
                if unit is AuditUnit.MULTIPLIER
                else self.machine.divider_wait_tap_for(core)
            )
            chosen_dt = dt or default_delta_t(unit.value)
            self.auditor.program(slot_index, f"{unit.value}{core}", chosen_dt)
        else:  # pragma: no cover - exhaustive enum
            raise DetectionError(f"unknown audit unit {unit!r}")
        self.source.add_burst_channel(name, tap, chosen_dt)
        # The programmed slot *is* the analyzer's accumulator: counts pass
        # through the hardware's saturating histogram buffer.
        self.session.add_analyzer(
            BurstAnalyzer(
                unit=name,
                dt=chosen_dt,
                accumulator=self.auditor.slot(slot_index),
                lr_threshold=self.lr_threshold,
                n_bins=self.auditor.config.histogram_bins,
                metrics=self.metrics,
                capture_evidence=self.capture_evidence,
                evidence_capacity=self.evidence_capacity,
            )
        )
        self._audits.append((unit, core, name))

    # ------------------------------------------------------------ streaming

    def push_quantum(self, obs: QuantumObservation) -> None:
        """Feed an observation directly (for non-machine sources)."""
        self.session.push_quantum(obs)

    def current_verdicts(
        self, min_oscillating_windows: Optional[int] = None
    ) -> DetectionReport:
        """Verdicts as of the quanta observed so far."""
        return self.session.current_verdicts(min_oscillating_windows)

    # --------------------------------------------------------------- verdicts

    def report(self, min_oscillating_windows: int = 1) -> DetectionReport:
        """Run the cross-window analyses and return the final verdicts."""
        return self.session.current_verdicts(min_oscillating_windows)

    def evidence(self):
        """Per-unit forensic bundles (empty unless ``capture_evidence``).

        See :meth:`repro.pipeline.session.DetectionSession.evidence`.
        """
        return self.session.evidence()

    # ------------------------------------------------------------- latency

    def _channel_name(self, unit: AuditUnit, core: Optional[int]) -> str:
        for audited_unit, audited_core, name in self._audits:
            if audited_unit is unit and (core is None or audited_core == core):
                return name
        raise DetectionError(f"{unit.value} is not being audited")

    def first_detection_quantum(
        self, unit: AuditUnit, core: Optional[int] = None
    ) -> Optional[int]:
        """Index of the first quantum at which the unit's verdict fires.

        For oscillation monitoring this is the first significant window's
        quantum; for burst monitoring, the earliest prefix of per-quantum
        histograms whose recurrence analysis detects. Returns None if the
        session never detects. Useful as a time-to-detection metric: how
        long a channel runs before CC-Hunter calls it.
        """
        return self.session.first_detection_quantum(
            self._channel_name(unit, core)
        )

    # ------------------------------------------------------------- inspection

    def burst_histograms(self, unit: AuditUnit, core: Optional[int] = None):
        """Per-quantum histograms recorded for a burst-audited unit."""
        analyzer = self.session.analyzer_for(self._channel_name(unit, core))
        if not isinstance(analyzer, BurstAnalyzer):
            raise DetectionError(f"{unit.value} is not burst-audited")
        return list(analyzer.histograms)

    def cache_analyses(self) -> List[OscillationAnalysis]:
        """Per-window oscillation analyses for the cache monitor."""
        analyzer = self.session.analyzer_for(AuditUnit.CACHE.value)
        assert isinstance(analyzer, OscillationAnalyzer)
        return list(analyzer.analyses)
