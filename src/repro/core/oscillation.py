"""Oscillatory-pattern detection on autocorrelograms (Section IV-D).

An oscillation is *periodicity* in the event train: the autocorrelogram
shows peaks of significant height at (roughly) evenly spaced lags,
separated by anti-correlated troughs. A covert cache channel's
conflict-miss identifier train is close to a square wave (runs of 'T→S'
then 'S→T' identifiers, one per covert set), whose correlogram is a
triangle wave: strong peaks at multiples of the wavelength with deep dips
between them.

The detector extracts prominent local maxima above a height floor and
accepts either of two oscillation signatures:

- a *periodic peak train*: several regularly spaced prominent peaks
  covering a substantial part of the lag range; or
- a *dominant oscillation*: at least one strong peak preceded by genuine
  anti-correlation (the correlogram dips at the half-wavelength), which is
  what a long-wavelength square-wave train produces when the lag range
  only fits one or two wavelengths.

Strong-but-decaying short-lag correlation (benign programs with bursty
phases) produces neither: no anti-correlation dip and no persistent peak
train. The paper's webserver shows brief periodicity between lags ~120
and ~180 that dies out — rejected by the coverage requirement and the
height floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import DetectionError

#: Default thresholds. Real cache channels in the paper score peak heights
#: of ~0.85-0.95; the 0.1 bps channel at a full-quantum window shows
#: periodicity whose magnitudes "do not show significant strength", which
#: the height floor rejects until the window is narrowed (Figure 11).
DEFAULT_MIN_PEAK_HEIGHT = 0.45
DEFAULT_MIN_PEAKS = 3
DEFAULT_SPACING_TOLERANCE = 0.25
DEFAULT_COVERAGE = 0.4
DEFAULT_DOMINANT_PEAK_HEIGHT = 0.65
#: A genuine long-wavelength oscillation anti-correlates deeply at the
#: half-wavelength (a covert square-wave train dips below -0.8); benign
#: bursty correlation decays without crossing well below zero.
DEFAULT_DIP_THRESHOLD = -0.3
DEFAULT_MIN_PROMINENCE = 0.08


def _smooth(values: np.ndarray, width: int = 5) -> np.ndarray:
    if values.size < width or width < 2:
        return values.astype(np.float64)
    kernel = np.ones(width)
    summed = np.convolve(values.astype(np.float64), kernel, mode="same")
    # Normalize by the actual window size at each position so the edges are
    # not artificially depressed (which would fabricate early local maxima).
    norm = np.convolve(np.ones(values.size), kernel, mode="same")
    return summed / norm


def find_peaks(
    acf: np.ndarray,
    min_height: float,
    min_separation: int = 8,
    min_prominence: float = DEFAULT_MIN_PROMINENCE,
    smooth_width: int = 5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Prominent local maxima of the (lightly smoothed) correlogram.

    Lag 0 (always 1.0) is excluded. A candidate must rise at least
    ``min_prominence`` above the lowest point between it and the previous
    accepted peak (or lag 0), which filters the small ripples noise etches
    onto a triangle-wave correlogram. Peaks closer than ``min_separation``
    keep only the higher one. Returns ``(lags, heights)`` with heights
    taken from the raw correlogram.
    """
    arr = np.asarray(acf, dtype=np.float64)
    if arr.size < 3:
        return np.zeros(0, dtype=np.int64), np.zeros(0)
    smooth = _smooth(arr, smooth_width)
    interior = smooth[1:-1]
    is_max = (
        (interior >= smooth[:-2])
        & (interior > smooth[2:])
        & (arr[1:-1] >= min_height)
    )
    candidates = np.nonzero(is_max)[0] + 1
    # Skip the smoothing-edge artifact right at the start of the range.
    candidates = candidates[candidates >= max(2, smooth_width)]
    kept = []
    if candidates.size:
        # The trough before each candidate is the minimum of ``smooth``
        # over [prev_peak, lag) — a window that always starts and ends on
        # a candidate boundary (or lag 0). One vectorized reduceat pass
        # precomputes the minima of the inter-candidate segments; the
        # accept loop then combines whole segments in O(1) per candidate
        # instead of rescanning up to max_lag values each time.
        bounds = np.concatenate(([0], candidates))
        seg_min = np.minimum.reduceat(smooth, bounds)[:-1]
        run_min = np.inf
        for k in range(candidates.size):
            lag = int(candidates[k])
            run_min = min(run_min, float(seg_min[k]))
            if smooth[lag] - run_min < min_prominence:
                continue
            if kept and lag - kept[-1] < min_separation:
                if arr[lag] > arr[kept[-1]]:
                    kept[-1] = lag
                    run_min = np.inf
                continue
            kept.append(lag)
            run_min = np.inf
    kept_arr = np.array(kept, dtype=np.int64)
    return kept_arr, arr[kept_arr] if kept_arr.size else np.zeros(0)


@dataclass(frozen=True)
class OscillationAnalysis:
    """Outcome of oscillation detection on one correlogram."""

    acf: np.ndarray
    peak_lags: np.ndarray
    peak_heights: np.ndarray
    #: Estimated oscillation wavelength in events (0 when aperiodic). For a
    #: cache channel this lands near the number of cache sets used.
    dominant_period: float
    #: Relative regularity of peak spacing (0 = perfectly periodic).
    spacing_irregularity: float
    #: Fraction of the lag range covered by the periodic peak sequence.
    coverage: float
    #: Deepest trough before the first peak (anti-correlation evidence).
    min_dip: float
    #: Periodicity present with sufficiently high peaks.
    significant: bool

    @property
    def max_peak(self) -> float:
        if self.peak_heights.size == 0:
            return 0.0
        return float(self.peak_heights.max())


def analyze_autocorrelogram(
    acf: np.ndarray,
    min_peak_height: float = DEFAULT_MIN_PEAK_HEIGHT,
    min_peaks: int = DEFAULT_MIN_PEAKS,
    spacing_tolerance: float = DEFAULT_SPACING_TOLERANCE,
    min_coverage: float = DEFAULT_COVERAGE,
    dominant_peak_height: float = DEFAULT_DOMINANT_PEAK_HEIGHT,
    dip_threshold: float = DEFAULT_DIP_THRESHOLD,
) -> OscillationAnalysis:
    """Decide whether a correlogram exhibits a significant oscillation.

    Signature 1 (peak train): at least ``min_peaks`` prominent peaks of
    height >= ``min_peak_height``, regularly spaced (std/mean below
    ``spacing_tolerance``), covering >= ``min_coverage`` of the lag range.

    Signature 2 (dominant oscillation): a peak of height >=
    ``dominant_peak_height`` at some lag whose preceding trough dips below
    ``dip_threshold`` — true alternation, not slow decay.
    """
    arr = np.asarray(acf, dtype=np.float64)
    if arr.size < 4:
        raise DetectionError("correlogram too short for oscillation analysis")
    lags, heights = find_peaks(arr, min_peak_height)
    if lags.size == 0:
        return OscillationAnalysis(
            acf=arr,
            peak_lags=lags,
            peak_heights=heights,
            dominant_period=0.0,
            spacing_irregularity=0.0,
            coverage=0.0,
            min_dip=float(arr[1:].min()) if arr.size > 1 else 0.0,
            significant=False,
        )

    # Anti-correlation evidence: the deepest trough before the *highest*
    # peak (using the first peak would let a small early ripple hide the
    # square-wave dip at the half-wavelength).
    top_peak = int(lags[int(np.argmax(heights))])
    min_dip = float(arr[1:top_peak].min()) if top_peak > 1 else 0.0
    coverage = float(lags[-1] / (arr.size - 1))

    if lags.size >= 2:
        spacings = np.diff(lags.astype(np.float64))
        mean_spacing = float(spacings.mean())
        irregularity = (
            float(spacings.std() / mean_spacing) if mean_spacing else 0.0
        )
        period = mean_spacing
    else:
        irregularity = 0.0
        period = float(lags[0])

    peak_train = (
        lags.size >= min_peaks
        and irregularity <= spacing_tolerance
        and coverage >= min_coverage
    )
    dominant = bool(
        (heights >= dominant_peak_height).any() and min_dip <= dip_threshold
    )
    return OscillationAnalysis(
        acf=arr,
        peak_lags=lags,
        peak_heights=heights,
        dominant_period=period,
        spacing_irregularity=irregularity,
        coverage=coverage,
        min_dip=min_dip,
        significant=bool(peak_train or dominant),
    )
