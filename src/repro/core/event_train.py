"""Event trains: the input representation of both detectors.

An *event train* is a uni-dimensional time series marking when indicator
events occurred (Figure 4 of the paper). :class:`EventTrain` holds
explicit cycle timestamps; :class:`LabeledEventTrain` additionally carries
the (replacer, victim) context pair of each cache conflict miss, mapped to
the small-integer identifiers the oscillation detector autocorrelates
(" 'S→T' is assigned 0 and 'T→S' is assigned 1 ").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import DetectionError


class EventTrain:
    """Sorted event timestamps with windowing and density helpers."""

    def __init__(self, times: np.ndarray):
        arr = np.asarray(times, dtype=np.int64)
        self.times = np.sort(arr)

    @property
    def count(self) -> int:
        return int(self.times.size)

    @property
    def span(self) -> int:
        """Cycles between first and last event (0 for < 2 events)."""
        if self.count < 2:
            return 0
        return int(self.times[-1] - self.times[0])

    def mean_rate(self, t0: Optional[int] = None, t1: Optional[int] = None) -> float:
        """Average events per cycle over ``[t0, t1)`` (default: full span)."""
        if self.count == 0:
            return 0.0
        lo = int(self.times[0]) if t0 is None else t0
        hi = int(self.times[-1]) + 1 if t1 is None else t1
        if hi <= lo:
            raise DetectionError(f"empty rate window [{lo}, {hi})")
        return self.slice(lo, hi).count / (hi - lo)

    def slice(self, t0: int, t1: int) -> "EventTrain":
        """Events within the half-open window ``[t0, t1)``."""
        lo = np.searchsorted(self.times, t0, side="left")
        hi = np.searchsorted(self.times, t1, side="left")
        return EventTrain(self.times[lo:hi])

    def density_counts(self, dt: int, t0: int, t1: int) -> np.ndarray:
        """Event count in each Δt window tiling ``[t0, t1)``."""
        if dt <= 0:
            raise DetectionError(f"Δt must be positive, got {dt}")
        if t1 <= t0:
            raise DetectionError(f"empty window [{t0}, {t1})")
        n_windows = -(-(t1 - t0) // dt)
        sliced = self.slice(t0, t1)
        if sliced.count == 0:
            return np.zeros(n_windows, dtype=np.int64)
        idx = (sliced.times - t0) // dt
        return np.bincount(idx, minlength=n_windows).astype(np.int64)

    def inter_event_intervals(self) -> np.ndarray:
        """Gaps between consecutive events (cycles)."""
        if self.count < 2:
            return np.zeros(0, dtype=np.int64)
        return np.diff(self.times)

    def __repr__(self) -> str:
        return f"EventTrain(n={self.count}, span={self.span})"


#: Canonical identifier map for a (spy, trojan) pair, per the paper's
#: example: the spy-replaces-trojan direction is 0, trojan-replaces-spy is 1.
def canonical_pair_ids(spy_ctx: int, trojan_ctx: int) -> Dict[Tuple[int, int], int]:
    return {(spy_ctx, trojan_ctx): 0, (trojan_ctx, spy_ctx): 1}


def dominant_pair_series(
    replacers: np.ndarray, victims: np.ndarray, context_id_bits: int = 3
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
    """Extract the dominant candidate covert pair's 0/1 event subsequence.

    Covert cache communication happens between *one* ordered pair of
    contexts and its reverse (the trojan and spy replacing each other).
    This finds the most frequent unordered cross-context pair, keeps only
    its events (both directions), labels one direction 0 and the other 1
    (the paper's 'S→T' = 0 / 'T→S' = 1), and returns
    ``(labels, event_indices, (ctx_a, ctx_b))``. ``event_indices`` maps
    back into the input arrays. Same-context events never form a pair.

    Restricting the oscillation analysis to one candidate pair keeps
    unrelated contexts' conflicts — whose identifier values would
    otherwise add spurious low-frequency structure — out of the series;
    the analysis is run for the dominant pair, which a covert train is
    dominated by.
    """
    reps = np.asarray(replacers, dtype=np.int64)
    vics = np.asarray(victims, dtype=np.int64)
    cross = reps != vics
    if not cross.any():
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, (-1, -1)
    lo = np.minimum(reps, vics)
    hi = np.maximum(reps, vics)
    unordered = (lo << context_id_bits) | hi
    unordered[~cross] = -1
    candidates, counts = np.unique(unordered[cross], return_counts=True)
    winner = int(candidates[np.argmax(counts)])
    ctx_a = winner >> context_id_bits
    ctx_b = winner & ((1 << context_id_bits) - 1)
    member = cross & (unordered == winner)
    indices = np.nonzero(member)[0]
    labels = (reps[indices] == ctx_a).astype(np.int64)
    return labels, indices, (ctx_a, ctx_b)


def compact_pair_identifiers(
    replacers: np.ndarray, victims: np.ndarray, context_id_bits: int = 3
) -> np.ndarray:
    """Small-integer identifier per ordered (replacer, victim) pair.

    Pairs are numbered 0, 1, 2, ... in order of first appearance — the
    CC-auditor's "every ordered pair of contexts has a unique identifier",
    with the covert pair's two directions (which dominate a covert train)
    landing on the smallest values. Keeping identifiers small matters for
    the autocorrelation: rare noise pairs must not receive large numeric
    labels whose squared deviations would swamp the train's variance.
    """
    reps = np.asarray(replacers, dtype=np.int64)
    vics = np.asarray(victims, dtype=np.int64)
    if reps.size == 0:
        return np.zeros(0, dtype=np.int64)
    packed = (reps << context_id_bits) | vics
    unique, inverse = np.unique(packed, return_inverse=True)
    first_pos = np.full(unique.size, packed.size, dtype=np.int64)
    np.minimum.at(first_pos, inverse, np.arange(packed.size))
    order = np.argsort(first_pos, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    return rank[inverse]


class LabeledEventTrain:
    """Conflict-miss train with per-event (replacer, victim) identifiers."""

    def __init__(
        self,
        times: np.ndarray,
        replacers: np.ndarray,
        victims: np.ndarray,
        pair_ids: Optional[Dict[Tuple[int, int], int]] = None,
    ):
        t = np.asarray(times, dtype=np.int64)
        r = np.asarray(replacers, dtype=np.int16)
        v = np.asarray(victims, dtype=np.int16)
        if not (t.size == r.size == v.size):
            raise DetectionError("labeled train arrays must have equal length")
        order = np.argsort(t, kind="stable")
        self.times = t[order]
        self.replacers = r[order]
        self.victims = v[order]
        self._pair_ids = dict(pair_ids) if pair_ids else None

    @property
    def count(self) -> int:
        return int(self.times.size)

    def pair_identifiers(self) -> np.ndarray:
        """Per-event small-integer identifier of the (replacer, victim) pair.

        Pairs in the explicit ``pair_ids`` map get their assigned ids; any
        other ordered pair gets a unique id after the explicit range, in
        order of first appearance (every ordered context pair has a unique
        identifier, as in the CC-auditor).
        """
        mapping: Dict[Tuple[int, int], int] = (
            dict(self._pair_ids) if self._pair_ids else {}
        )
        next_id = max(mapping.values()) + 1 if mapping else 0
        ids = np.empty(self.count, dtype=np.int64)
        for i in range(self.count):
            pair = (int(self.replacers[i]), int(self.victims[i]))
            if pair not in mapping:
                mapping[pair] = next_id
                next_id += 1
            ids[i] = mapping[pair]
        return ids

    def slice(self, t0: int, t1: int) -> "LabeledEventTrain":
        lo = np.searchsorted(self.times, t0, side="left")
        hi = np.searchsorted(self.times, t1, side="left")
        return LabeledEventTrain(
            self.times[lo:hi],
            self.replacers[lo:hi],
            self.victims[lo:hi],
            self._pair_ids,
        )

    def unlabeled(self) -> EventTrain:
        """Drop labels, keeping only the timestamps."""
        return EventTrain(self.times)

    def __repr__(self) -> str:
        return f"LabeledEventTrain(n={self.count})"
