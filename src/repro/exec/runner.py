"""Parallel trial execution: deterministic process-pool fan-out.

CC-Hunter's evaluation is built from sweeps of *independent* simulator
trials — Figure 12 alone replays hundreds of random messages per channel
kind — and every trial is a pure function of its parameters and seed.
That makes the sweeps embarrassingly parallel, and this module is the
one place the repo exploits it: a :class:`TrialRunner` fans a
:class:`TrialSpec` out over a ``ProcessPoolExecutor`` while guaranteeing
that the *results are bit-identical no matter how many workers run them*.

The determinism contract rests on three invariants:

1. **Per-trial seeds are a pure function of (base seed, spec key, trial
   index)** — derived through :func:`repro.util.rng.derive_rng`'s
   ``SeedSequence`` spawning, never from execution order, worker
   identity, or shared generator state (:func:`trial_seed`).
2. **Trials never communicate.** Each worker installs a fresh default
   :class:`~repro.obs.metrics.MetricsRegistry` before running a chunk,
   so instrumentation cannot leak between trials or processes.
3. **Results *and* worker metrics are gathered in canonical
   (submission) order**, whatever order the chunks actually finish in.
   Counter and histogram merges commute, but gauge merges are
   last-writer-wins — so the runner defers every snapshot merge until
   all chunks are in and replays them sorted by first trial index. A
   gauge set by trial 7 therefore beats one set by trial 3 in the
   parent registry for every ``jobs`` value, not just whichever chunk
   happened to finish last.

``jobs=1`` (the default) runs everything in-process with no pickling —
the exact same code path the workers execute — so ``run_trials(spec, n,
jobs=1)`` and ``jobs=N`` return equal results; the equivalence tests in
``tests/exec/test_equivalence.py`` hold every rewired figure sweep to
that.

Mechanics (see docs/PERFORMANCE.md for the knobs):

- trials are submitted in **chunks** sized to amortize process spawn and
  pickle costs (``chunk_size``, default ≈ 4 chunks per worker);
- a **crashed worker** (e.g. OOM-killed) breaks the pool; the runner
  rebuilds it and resubmits the unfinished chunks, bounded by
  ``max_chunk_retries`` per chunk, then raises :class:`ExecError`;
- per-worker metrics snapshots are **merged back into the parent
  registry** (:meth:`MetricsRegistry.merge`) in canonical chunk order
  after the sweep (invariant 3), and the runner records per-trial wall
  times in a ``cchunter_trial_seconds`` histogram plus chunk/retry
  counters; an optional :class:`~repro.obs.timeseries.MetricsSampler`
  passed as ``sampler=`` takes one labeled sample after each canonical
  merge, yielding a deterministic per-chunk metrics time series;
- an optional ``progress(done, total)`` callback fires in the parent as
  chunks complete (completion order — only the *results* are ordered).

Failure containment (``TrialSpec.timeout_s``, see docs/ROBUSTNESS.md):
giving a spec a per-trial wall-clock budget switches the runner into
*recording* mode — a trial that exceeds the budget, raises, or loses its
worker no longer aborts the sweep; its canonical result slot holds a
:class:`TrialFailure` (``kind`` ∈ ``timeout`` / ``raised`` /
``crashed``) and the sweep completes. Timeouts are enforced inside the
worker with ``signal.setitimer`` (POSIX main thread); a parent-side
backstop reaps whole chunks whose worker never reports back. Failures
are tallied in ``cchunter_trial_failures_total{kind=...}``. With
``timeout_s=None`` (the default) nothing changes: exceptions propagate
and crashed chunks retry then raise, exactly as before.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import MetricsRegistry
from repro.util.rng import derive_rng, spawn_seed


class ExecError(ReproError):
    """Trial execution failed (bad spec, or a chunk exhausted its retries)."""


#: Histogram buckets for per-trial wall time: 1 ms .. 60 s.
TRIAL_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0, 30.0, 60.0,
)


@dataclass(frozen=True)
class TrialFailure:
    """A trial that produced no result; sits in its canonical slot.

    ``kind`` classifies the failure:

    - ``"timeout"`` — exceeded ``TrialSpec.timeout_s`` (worker alarm or
      parent backstop);
    - ``"raised"`` — the trial function raised an ordinary exception;
    - ``"crashed"`` — the worker process died (e.g. OOM-killed) and the
      chunk exhausted its retries.
    """

    index: int
    kind: str
    message: str
    elapsed_s: float

    def __bool__(self) -> bool:
        # Failures are falsy so `r for r in results if r` and
        # `filter(None, results)` skip them like missing values.
        return False


class _TrialTimeout(Exception):
    """Internal: raised by the SIGALRM handler inside a worker."""


@contextmanager
def _trial_alarm(timeout_s: Optional[float]):
    """Arm a per-trial wall-clock alarm, where the platform allows it.

    ``signal.setitimer`` only works on POSIX and only in the main
    thread — which is exactly where pool workers run trial functions.
    Elsewhere this degrades to a no-op and the parent-side backstop in
    ``_run_pooled`` is the only guard.
    """
    usable = (
        timeout_s is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(_signum, _frame):
        raise _TrialTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def trial_seed(base_seed: int, key: str, index: int) -> int:
    """The seed of trial ``index`` in a sweep: pure, order-independent.

    Derived via ``SeedSequence`` spawning keyed by ``(key, index)``, so
    the same ``(base_seed, key, index)`` triple always yields the same
    63-bit seed regardless of which process computes it or in what
    order — the foundation of the ``jobs=1 == jobs=N`` guarantee.
    """
    return spawn_seed(derive_rng(base_seed, "exec.trial", key, index))


@dataclass(frozen=True)
class TrialSpec:
    """What one sweep runs: a picklable trial function plus shared kwargs.

    ``fn`` must be an importable module-level callable (workers unpickle
    it by qualified name); it receives ``common`` merged with the
    per-trial kwargs and returns a picklable result. If ``seed`` is not
    ``None``, every trial additionally receives ``seed_arg=``
    :func:`trial_seed` ``(seed, key, index)`` unless its own kwargs
    already bind that argument — sweeps that need a bespoke seed formula
    just put it in the per-trial kwargs.

    ``timeout_s`` gives each trial a wall-clock budget **and** switches
    the runner into failure-recording mode: trials that time out, raise,
    or lose their worker yield a :class:`TrialFailure` in their result
    slot instead of aborting the sweep.
    """

    fn: Callable[..., Any]
    common: Mapping[str, Any] = field(default_factory=dict)
    key: str = ""
    seed: Optional[int] = None
    seed_arg: str = "seed"
    timeout_s: Optional[float] = None

    def kwargs_for(self, index: int, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """The full kwargs of trial ``index`` (canonical, order-free)."""
        kwargs = dict(self.common)
        if self.seed is not None and self.seed_arg not in overrides:
            kwargs[self.seed_arg] = trial_seed(self.seed, self.key, index)
        kwargs.update(overrides)
        return kwargs


@dataclass
class _ChunkResult:
    """What one worker returns for one chunk of trials."""

    indices: List[int]
    results: List[Any]
    seconds: List[float]
    metrics_snapshot: Optional[Dict[str, Any]]
    profile_snapshot: Optional[Dict[str, Any]] = None


def _run_chunk(
    fn: Callable[..., Any],
    items: Sequence[Tuple[int, Dict[str, Any]]],
    fresh_registry: bool,
    timeout_s: Optional[float] = None,
    profile: bool = False,
) -> _ChunkResult:
    """Run one chunk of trials; the worker-side entry point.

    Installs a fresh default metrics registry (so the snapshot covers
    exactly this chunk, and forked workers do not double-count state
    inherited from the parent), runs each trial under a wall clock, and
    returns results + timings + the registry snapshot. Also the serial
    path: ``jobs=1`` calls this in-process with the same arguments.

    With ``timeout_s`` set, each trial runs under a wall-clock alarm and
    failures (timeout or exception) become :class:`TrialFailure` results
    rather than propagating — one bad trial cannot take down the chunk.

    With ``profile`` set (the parent had a :class:`StageProfiler`
    active), the chunk runs under its own fresh profiler — mirroring
    the fresh-registry rule, so a forked worker never re-counts stages
    inherited from the parent — and ships its ``repro.obs.profile/v1``
    snapshot back for the parent's canonical-order merge.
    """
    previous = obs_metrics.get_default()
    registry = MetricsRegistry() if fresh_registry else previous
    if fresh_registry:
        obs_metrics.set_default(registry)
    previous_profiler = obs_tracing.get_profiler()
    profiler = None
    if profile:
        # Imported here: workers only pay for the profile module when
        # the parent actually profiles.
        from repro.obs.profile import StageProfiler

        profiler = StageProfiler()
        obs_tracing.set_profiler(profiler)
    try:
        indices: List[int] = []
        results: List[Any] = []
        seconds: List[float] = []
        for index, kwargs in items:
            start = time.perf_counter()
            if timeout_s is None:
                results.append(fn(**kwargs))
            else:
                try:
                    with _trial_alarm(timeout_s):
                        results.append(fn(**kwargs))
                except _TrialTimeout:
                    elapsed = time.perf_counter() - start
                    results.append(TrialFailure(
                        index, "timeout",
                        f"trial exceeded {timeout_s:g}s wall-clock budget",
                        elapsed,
                    ))
                except Exception as exc:
                    elapsed = time.perf_counter() - start
                    results.append(TrialFailure(
                        index, "raised",
                        f"{type(exc).__name__}: {exc}",
                        elapsed,
                    ))
            seconds.append(time.perf_counter() - start)
            indices.append(index)
    finally:
        if fresh_registry:
            obs_metrics.set_default(previous)
        if profile:
            obs_tracing.set_profiler(previous_profiler)
    snapshot = registry.to_dict() if fresh_registry else None
    profile_snapshot = profiler.to_dict() if profiler is not None else None
    return _ChunkResult(indices, results, seconds, snapshot, profile_snapshot)


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: 0 means all CPUs, negatives reject."""
    if jobs < 0:
        raise ExecError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def default_chunk_size(n: int, jobs: int) -> int:
    """Chunk size amortizing spawn/pickle cost: ~4 chunks per worker.

    Large enough that a chunk does real work relative to the pickle
    round-trip, small enough that the pool load-balances and a retried
    chunk does not redo the whole sweep. Capped at 32 trials.
    """
    if n <= 0:
        return 1
    per_worker = -(-n // max(1, jobs))  # ceil
    return max(1, min(32, -(-per_worker // 4)))


class TrialRunner:
    """Runs independent trials, serially or over a process pool.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (default) runs in-process; ``0`` uses
        every CPU (:func:`resolve_jobs`).
    chunk_size:
        Trials per submitted task; default :func:`default_chunk_size`.
    max_chunk_retries:
        How many times one chunk may be resubmitted after a worker
        crash before :class:`ExecError` is raised.
    metrics:
        Parent registry that receives merged worker snapshots and the
        runner's own trial-timing histogram (default: the process-wide
        default registry at run time).
    progress:
        Optional ``progress(done_trials, total_trials)`` callback,
        invoked in the parent whenever a chunk completes.
    sampler:
        Optional :class:`~repro.obs.timeseries.MetricsSampler` sampled
        once after each chunk's snapshot merges into the parent
        registry. Merges happen in canonical chunk order after the
        sweep, so the resulting series is identical for every ``jobs``
        value.
    """

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        max_chunk_retries: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        sampler=None,
    ):
        self.jobs = resolve_jobs(jobs)
        if chunk_size is not None and chunk_size < 1:
            raise ExecError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        if max_chunk_retries < 0:
            raise ExecError(
                f"max_chunk_retries must be >= 0, got {max_chunk_retries}"
            )
        self.max_chunk_retries = max_chunk_retries
        self._metrics = metrics
        self.progress = progress
        self.sampler = sampler

    # ------------------------------------------------------------------ API

    def run_trials(
        self,
        spec: TrialSpec,
        n: Optional[int] = None,
        params: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> List[Any]:
        """Run ``n`` trials (or one per ``params`` entry), ordered.

        ``params[i]`` holds trial ``i``'s kwargs overrides; pass ``n``
        alone for a homogeneous sweep driven purely by derived seeds.
        Results come back indexed by trial, independent of ``jobs``,
        chunking, and completion order.
        """
        if params is None:
            if n is None:
                raise ExecError("run_trials needs n or params")
            params = [{} for _ in range(n)]
        elif n is not None and n != len(params):
            raise ExecError(f"n={n} disagrees with len(params)={len(params)}")
        total = len(params)
        if total == 0:
            return []
        items = [
            (i, spec.kwargs_for(i, overrides))
            for i, overrides in enumerate(params)
        ]
        chunk_size = self.chunk_size or default_chunk_size(total, self.jobs)
        chunks = [
            items[lo : lo + chunk_size] for lo in range(0, total, chunk_size)
        ]
        registry = self._metrics if self._metrics is not None \
            else obs_metrics.get_default()
        registry.counter(
            "cchunter_exec_sweeps_total",
            "Trial sweeps executed by TrialRunner.",
            labels={"spec": spec.key or spec.fn.__name__},
        ).inc()
        # When the caller has a StageProfiler active, each chunk runs
        # under its own fresh profiler and ships a profile snapshot
        # back, merged below alongside the metrics snapshots.
        parent_profiler = obs_tracing.get_profiler()
        profile = parent_profiler is not None
        if self.jobs == 1:
            chunk_results = [
                self._finish_chunk(
                    _run_chunk(spec.fn, chunk, True, spec.timeout_s, profile),
                    registry, spec, done, total,
                )
                for done, chunk in self._serial_chunks(chunks)
            ]
        else:
            chunk_results = self._run_pooled(
                spec, chunks, registry, total, profile
            )
        # Invariant 3: replay worker snapshots into the parent registry
        # in canonical chunk order, not completion order — gauge merges
        # are last-writer-wins, so this is what makes the merged
        # registry identical for every jobs value. Profile snapshots
        # ride the same loop: their sums commute too, but keeping one
        # order discipline for every merged artifact is cheaper than
        # remembering which ones commute.
        for chunk_result in sorted(chunk_results, key=lambda c: c.indices[0]):
            if chunk_result.metrics_snapshot is not None:
                registry.merge(chunk_result.metrics_snapshot)
            if (
                parent_profiler is not None
                and chunk_result.profile_snapshot is not None
            ):
                parent_profiler.merge_dict(chunk_result.profile_snapshot)
            if self.sampler is not None:
                self.sampler.sample(
                    label=f"chunk:{chunk_result.indices[0]}"
                )
        results: List[Any] = [None] * total
        for chunk_result in chunk_results:
            for index, result in zip(chunk_result.indices, chunk_result.results):
                results[index] = result
        return results

    # ------------------------------------------------------------- internals

    @staticmethod
    def _serial_chunks(chunks):
        done = 0
        for chunk in chunks:
            done += len(chunk)
            yield done, chunk

    def _finish_chunk(
        self,
        chunk_result: _ChunkResult,
        registry: MetricsRegistry,
        spec: TrialSpec,
        done: int,
        total: int,
    ) -> _ChunkResult:
        """Tally one completed chunk and fire the progress callback.

        Runs in completion order, so it must only touch commutative
        metrics (counters, histograms); the worker snapshot itself is
        merged later, in canonical order, by ``run_trials``.
        """
        label = {"spec": spec.key or spec.fn.__name__}
        timer = registry.histogram(
            "cchunter_trial_seconds",
            "Wall time of one trial inside TrialRunner.",
            labels=label,
            buckets=TRIAL_SECONDS_BUCKETS,
        )
        for seconds in chunk_result.seconds:
            timer.observe(seconds)
        registry.counter(
            "cchunter_exec_trials_total",
            "Trials completed by TrialRunner.",
            labels=label,
        ).inc(len(chunk_result.indices))
        registry.counter(
            "cchunter_exec_chunks_total",
            "Trial chunks completed by TrialRunner.",
            labels=label,
        ).inc()
        for result in chunk_result.results:
            if isinstance(result, TrialFailure):
                registry.counter(
                    "cchunter_trial_failures_total",
                    "Trials that timed out, raised, or lost their worker.",
                    labels={**label, "kind": result.kind},
                ).inc()
        if self.progress is not None:
            self.progress(done, total)
        return chunk_result

    def _run_pooled(
        self,
        spec: TrialSpec,
        chunks: List[List[Tuple[int, Dict[str, Any]]]],
        registry: MetricsRegistry,
        total: int,
        profile: bool = False,
    ) -> List[_ChunkResult]:
        """Fan chunks over a process pool, retrying crashed chunks.

        A worker crash (``BrokenProcessPool``) poisons the whole pool:
        every unfinished chunk is requeued, each one's retry budget is
        charged, and the pool is rebuilt. Ordinary exceptions raised by
        the trial function are *not* retried — they are deterministic
        under the seed contract — and propagate to the caller.

        With ``spec.timeout_s`` set, two extra guards apply. A chunk
        that exhausts its crash retries is *recorded* — every trial in
        it becomes a ``crashed`` :class:`TrialFailure` — instead of
        raising. And a parent-side backstop bounds how long the batch
        may run past its per-trial budgets: if a worker's alarm never
        fires (platform without ``setitimer``, or a trial hung in
        uninterruptible C code), the remaining chunks are reaped as
        ``timeout`` failures rather than blocking forever.
        """
        pending: List[int] = list(range(len(chunks)))
        retries = [0] * len(chunks)
        finished: List[_ChunkResult] = []
        done_trials = 0
        retry_counter = registry.counter(
            "cchunter_exec_chunk_retries_total",
            "Chunk resubmissions after worker crashes.",
            labels={"spec": spec.key or spec.fn.__name__},
        )
        backstop = None
        if spec.timeout_s is not None:
            longest = max(len(chunk) for chunk in chunks)
            # Generous: the alarm inside the worker is the real limit;
            # this only catches workers that cannot enforce it.
            backstop = spec.timeout_s * longest * 2 + 30.0

        def _failed_chunk(ci: int, kind: str, message: str) -> None:
            nonlocal done_trials
            chunk = chunks[ci]
            chunk_result = _ChunkResult(
                indices=[index for index, _kwargs in chunk],
                results=[
                    TrialFailure(index, kind, message, 0.0)
                    for index, _kwargs in chunk
                ],
                seconds=[0.0] * len(chunk),
                metrics_snapshot=None,
            )
            pending.remove(ci)
            done_trials += len(chunk)
            finished.append(self._finish_chunk(
                chunk_result, registry, spec, done_trials, total
            ))

        while pending:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(
                        _run_chunk, spec.fn, chunks[ci], True, spec.timeout_s,
                        profile,
                    ): ci
                    for ci in list(pending)
                }
                try:
                    for future in as_completed(futures, timeout=backstop):
                        ci = futures[future]
                        try:
                            chunk_result = future.result()
                        except BrokenProcessPool:
                            # A crash poisons the whole pool, so every
                            # unfinished chunk lands here; each is charged
                            # one retry and requeued for the rebuilt pool.
                            retries[ci] += 1
                            retry_counter.inc()
                            if retries[ci] > self.max_chunk_retries:
                                if spec.timeout_s is not None:
                                    _failed_chunk(
                                        ci, "crashed",
                                        f"worker crashed {retries[ci]} times",
                                    )
                                    continue
                                raise ExecError(
                                    f"chunk {ci} ({len(chunks[ci])} trials) "
                                    f"crashed {retries[ci]} times; giving up"
                                ) from None
                            continue
                        pending.remove(ci)
                        done_trials += len(chunk_result.indices)
                        finished.append(
                            self._finish_chunk(
                                chunk_result, registry, spec, done_trials,
                                total,
                            )
                        )
                except FuturesTimeout:
                    # Backstop tripped: kill the stuck workers outright
                    # (the context-manager exit would otherwise join
                    # them forever) and reap every chunk still in
                    # flight as timeout failures.
                    for proc in getattr(pool, "_processes", {}).values():
                        proc.terminate()
                    pool.shutdown(wait=False, cancel_futures=True)
                    for future, ci in futures.items():
                        if ci not in pending:
                            continue
                        if future.done() and future.exception() is None:
                            chunk_result = future.result()
                            pending.remove(ci)
                            done_trials += len(chunk_result.indices)
                            finished.append(self._finish_chunk(
                                chunk_result, registry, spec, done_trials,
                                total,
                            ))
                        else:
                            _failed_chunk(
                                ci, "timeout",
                                "chunk missed the parent-side deadline "
                                f"({backstop:g}s)",
                            )
        return finished


def run_trials(
    spec: TrialSpec,
    n: Optional[int] = None,
    params: Optional[Sequence[Mapping[str, Any]]] = None,
    jobs: int = 1,
    **runner_kwargs: Any,
) -> List[Any]:
    """One-shot convenience: ``TrialRunner(jobs, ...).run_trials(...)``."""
    return TrialRunner(jobs=jobs, **runner_kwargs).run_trials(
        spec, n=n, params=params
    )
