"""Trial-execution subsystem: deterministic parallel sweep fan-out.

See :mod:`repro.exec.runner` for the design and docs/PERFORMANCE.md for
the architecture, determinism guarantees, and measured speedups.
"""

from repro.exec.runner import (
    ExecError,
    TrialFailure,
    TrialRunner,
    TrialSpec,
    default_chunk_size,
    resolve_jobs,
    run_trials,
    trial_seed,
)

__all__ = [
    "ExecError",
    "TrialFailure",
    "TrialRunner",
    "TrialSpec",
    "default_chunk_size",
    "resolve_jobs",
    "run_trials",
    "trial_seed",
]
