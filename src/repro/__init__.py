"""CC-Hunter reproduction: covert timing channel detection on shared hardware.

A faithful, pure-Python reproduction of *CC-Hunter: Uncovering Covert
Timing Channels on Shared Processor Hardware* (Chen & Venkataramani,
MICRO 2014): the detection framework itself, a discrete-event model of the
shared-hardware machine it audits, the three covert channels the paper
evaluates against, the CC-auditor hardware, and the benign workloads of
the false-alarm study.

Quickstart::

    from repro import (
        AuditUnit, CCHunter, ChannelConfig, Machine, MemoryBusCovertChannel,
        Message, background_noise_processes,
    )

    machine = Machine(seed=1)
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)

    channel = MemoryBusCovertChannel(
        machine, ChannelConfig(message=Message.random_credit_card(1))
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)
    background_noise_processes(
        machine, n_quanta=8, avoid_contexts=(0, 2)
    )
    machine.run_quanta(8)
    print(hunter.report().render())
"""

from repro.channels import (
    CacheCovertChannel,
    ChannelConfig,
    CovertChannel,
    DividerCovertChannel,
    MemoryBusCovertChannel,
    MultiplierCovertChannel,
)
from repro.config import (
    AuditorConfig,
    BusConfig,
    CacheConfig,
    DividerConfig,
    MachineConfig,
)
from repro.core import (
    AuditUnit,
    CCHunter,
    DetectionReport,
    EventTrain,
    LabeledEventTrain,
    UnitVerdict,
    analyze_autocorrelogram,
    analyze_histogram,
    analyze_recurrence,
    autocorrelogram,
    build_density_histogram,
)
from repro.errors import ReproError
from repro.exec import TrialRunner, TrialSpec, run_trials
from repro.hardware import (
    BloomFilter,
    CCAuditor,
    GenerationConflictTracker,
    IdealLRUConflictTracker,
    estimate_auditor_costs,
)
from repro.mitigation import (
    apply_bus_lock_throttle,
    apply_clock_fuzzing,
    partition_cache_ways,
)
from repro.osmodel import AuditAPI, CCHunterDaemon, User
from repro.sim import Machine
from repro.util import Message, bit_error_rate
from repro.workloads import WORKLOADS, background_noise_processes

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "MachineConfig",
    "CacheConfig",
    "BusConfig",
    "DividerConfig",
    "AuditorConfig",
    # simulation
    "Machine",
    # detection
    "AuditUnit",
    "CCHunter",
    "DetectionReport",
    "UnitVerdict",
    "EventTrain",
    "LabeledEventTrain",
    "autocorrelogram",
    "analyze_autocorrelogram",
    "analyze_histogram",
    "analyze_recurrence",
    "build_density_histogram",
    # hardware
    "BloomFilter",
    "CCAuditor",
    "GenerationConflictTracker",
    "IdealLRUConflictTracker",
    "estimate_auditor_costs",
    # channels
    "ChannelConfig",
    "CovertChannel",
    "MemoryBusCovertChannel",
    "DividerCovertChannel",
    "CacheCovertChannel",
    "MultiplierCovertChannel",
    # mitigation
    "apply_bus_lock_throttle",
    "apply_clock_fuzzing",
    "partition_cache_ways",
    # OS support
    "AuditAPI",
    "User",
    "CCHunterDaemon",
    # workloads
    "WORKLOADS",
    "background_noise_processes",
    # parallel execution
    "TrialRunner",
    "TrialSpec",
    "run_trials",
    # utilities
    "Message",
    "bit_error_rate",
    "ReproError",
]
