"""Tests for threshold-density and likelihood-ratio analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.burst import (
    analyze_histogram,
    find_threshold_bin,
    likelihood_ratio,
)
from repro.errors import DetectionError


def hist_with(bins: dict, size: int = 128) -> np.ndarray:
    hist = np.zeros(size, dtype=np.int64)
    for idx, value in bins.items():
        hist[idx] = value
    return hist


class TestThresholdBin:
    def test_valley_rule(self):
        # Decaying head then a second mode: valley at bin 4.
        hist = hist_with({0: 1000, 1: 50, 2: 30, 3: 20, 4: 10, 5: 15,
                          6: 20, 7: 12})
        assert find_threshold_bin(hist) == 4

    def test_covert_shape_threshold_at_one(self):
        # bin0 spike, silence, burst mode at 20: first valley right at 1.
        hist = hist_with({0: 2000, 20: 250})
        assert find_threshold_bin(hist) == 1

    def test_gentle_slope_fallback(self):
        # Strictly decaying histogram with a long flat tail: the valley rule
        # fails (each bin > next) until the flat region.
        hist = np.array([1000, 500, 240, 110, 50, 20, 8, 3, 1, 0, 0, 0])
        threshold = find_threshold_bin(hist)
        assert threshold is not None
        assert threshold >= 4

    def test_all_zero(self):
        assert find_threshold_bin(np.zeros(16)) is None

    def test_too_short(self):
        assert find_threshold_bin(np.array([1, 2])) is None


class TestLikelihoodRatio:
    def test_bin_zero_excluded(self):
        hist = hist_with({0: 10_000, 1: 50, 20: 450})
        assert likelihood_ratio(hist, 2) == pytest.approx(0.9)

    def test_empty_population(self):
        hist = hist_with({0: 100})
        assert likelihood_ratio(hist, 1) == 0.0

    def test_bad_threshold(self):
        with pytest.raises(DetectionError):
            likelihood_ratio(np.zeros(8), 0)

    @given(st.integers(1, 127))
    def test_bounded(self, threshold):
        rng = np.random.default_rng(threshold)
        hist = rng.integers(0, 100, 128)
        lr = likelihood_ratio(hist, threshold)
        assert 0.0 <= lr <= 1.0


class TestAnalyzeHistogram:
    def test_covert_channel_shape_significant(self):
        """bin0 spike + burst mode at density 20: LR ~1, significant."""
        hist = hist_with({0: 2000, 20: 200, 21: 50})
        analysis = analyze_histogram(hist)
        assert analysis.has_bursts
        assert analysis.likelihood_ratio > 0.9
        assert analysis.significant

    def test_mailserver_shape_not_significant(self):
        """Second mode exists (bins 5-8) but LR below 0.5 — the paper's
        mailserver case must not alarm."""
        hist = hist_with({0: 20_000, 1: 200, 2: 60, 3: 30, 5: 8, 6: 6,
                          7: 9, 8: 8})
        analysis = analyze_histogram(hist)
        assert analysis.likelihood_ratio < 0.5
        assert not analysis.significant

    def test_empty_histogram_not_significant(self):
        analysis = analyze_histogram(np.zeros(128, dtype=np.int64))
        assert not analysis.has_bursts
        assert not analysis.significant
        assert analysis.likelihood_ratio == 0.0

    def test_bin_zero_only(self):
        analysis = analyze_histogram(hist_with({0: 500}))
        assert not analysis.significant

    def test_poisson_like_not_significant(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(0.5, 100_000)
        hist = np.bincount(np.minimum(counts, 127), minlength=128)
        analysis = analyze_histogram(hist)
        assert not analysis.significant

    def test_custom_lr_threshold(self):
        hist = hist_with({0: 1000, 1: 100, 2: 40, 3: 20, 10: 90})
        loose = analyze_histogram(hist, lr_threshold=0.3)
        strict = analyze_histogram(hist, lr_threshold=0.99)
        assert loose.likelihood_ratio == strict.likelihood_ratio
        assert loose.significant != strict.significant or not loose.has_bursts

    def test_burst_sample_count(self):
        hist = hist_with({0: 100, 20: 30, 25: 10})
        analysis = analyze_histogram(hist)
        assert analysis.burst_sample_count == 40

    def test_too_few_bins_rejected(self):
        with pytest.raises(DetectionError):
            analyze_histogram(np.array([1, 2]))

    def test_negative_rejected(self):
        with pytest.raises(DetectionError):
            analyze_histogram(np.array([1, -2, 3]))

    def test_means_split_correctly(self):
        hist = hist_with({0: 900, 1: 100, 20: 100})
        analysis = analyze_histogram(hist)
        assert analysis.nonburst_mean < 1.0
        assert analysis.burst_mean == pytest.approx(20.0)

    @settings(max_examples=30)
    @given(st.integers(0, 10_000))
    def test_never_crashes_on_random_histograms(self, seed):
        rng = np.random.default_rng(seed)
        hist = rng.integers(0, 1000, 128)
        analysis = analyze_histogram(hist)
        assert 0.0 <= analysis.likelihood_ratio <= 1.0
