"""Batch kernels vs per-event adapters vs brute-force references.

The columnar hot path leans on vectorized ``push_batch`` kernels; the
per-event ``push`` entry points remain as thin adapters. These tests pin
both to an O(n·lags) reference estimator (autocorrelation) and to
repeated single-record paths (density, burst aggregate, auditor vector
registers), so the fast and slow paths cannot drift apart.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import AuditorConfig
from repro.core.autocorr import RunningAutocorrelogram
from repro.core.burst import StreamingBurstEstimator
from repro.core.density import StreamingDensityHistogram
from repro.core.event_train import EventTrain
from repro.errors import DetectionError
from repro.hardware.auditor import VectorRegisterPair


def reference_correlogram(x, max_lag):
    """The paper's r_p computed the slow, obvious way: O(n·lags)."""
    arr = np.asarray(x, dtype=np.float64)
    n = arr.size
    max_lag = min(max_lag, n - 1)
    centered = arr - arr.mean()
    denom = float(np.dot(centered, centered))
    if denom <= 0.0:
        return np.ones(max_lag + 1, dtype=np.float64)
    return np.array(
        [
            float(np.dot(centered[: n - p], centered[p:])) / denom
            for p in range(max_lag + 1)
        ]
    )


class TestRunningAutocorrelogram:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 1), min_size=2, max_size=120),
        st.integers(0, 40),
        st.integers(1, 17),
    )
    def test_push_and_push_batch_agree_exactly(self, bits, max_lag, chunk):
        """Integer series: running sums are exact, so any chunking of the
        same series leaves bit-identical estimator state."""
        one = RunningAutocorrelogram(max_lag)
        many = RunningAutocorrelogram(max_lag)
        for b in bits:
            one.push(b)
        for i in range(0, len(bits), chunk):
            many.push_batch(np.array(bits[i : i + chunk]))
        assert one.n == many.n == len(bits)
        np.testing.assert_array_equal(one.correlogram(), many.correlogram())

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 1), min_size=2, max_size=120),
        st.integers(0, 40),
    )
    def test_both_match_reference(self, bits, max_lag):
        ref = reference_correlogram(bits, max_lag)
        pushed = RunningAutocorrelogram(max_lag)
        batched = RunningAutocorrelogram(max_lag)
        for b in bits:
            pushed.push(b)
        batched.push_batch(np.array(bits))
        np.testing.assert_allclose(pushed.correlogram(), ref, atol=1e-9)
        np.testing.assert_allclose(batched.correlogram(), ref, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=2, max_size=80
        ),
        st.integers(0, 30),
    )
    def test_float_series_match_reference(self, values, max_lag):
        arr = np.asarray(values, dtype=np.float64)
        # The running estimator expands Σ(x−x̄)² as C₀ − n·x̄², which is
        # pure cancellation noise when the true variance is ~1e9 times
        # smaller than the raw power (e.g. two samples differing in the
        # 7th significant digit). No finite tolerance is meaningful
        # there, and the detector never sees such series — its trains
        # are 0/1 labels — so the property holds on conditioned inputs.
        centered = arr - arr.mean()
        assume(
            float(np.dot(centered, centered))
            > 1e-7 * max(1.0, float(np.dot(arr, arr)))
        )
        ref = reference_correlogram(values, max_lag)
        est = RunningAutocorrelogram(max_lag)
        est.push_batch(arr)
        np.testing.assert_allclose(
            est.correlogram(), ref, atol=1e-6, rtol=1e-6
        )

    def test_extend_alias_is_push_batch(self):
        est = RunningAutocorrelogram(4)
        est.extend(np.array([1, 0, 1, 0, 1]))
        assert est.n == 5


class TestStreamingDensityBatch:
    def test_push_adapter_equals_batch(self):
        counts = [0, 3, 1, 0, 200, 5]
        one = StreamingDensityHistogram(dt=10, n_bins=16)
        many = StreamingDensityHistogram(dt=10, n_bins=16)
        for c in counts:
            one.push(c)
        many.push_batch(np.array(counts, dtype=np.int64))
        np.testing.assert_array_equal(one.histogram(), many.histogram())
        assert one.events_seen == many.events_seen

    def test_float_counts_rejected_loudly(self):
        est = StreamingDensityHistogram(dt=10, n_bins=16)
        with pytest.raises(DetectionError, match="integers"):
            est.push_batch(np.array([1.5, 2.0]))
        with pytest.raises(DetectionError, match="integers"):
            est.push_times(np.array([3.7]), up_to=10)

    def test_narrow_integer_dtypes_widened(self):
        est = StreamingDensityHistogram(dt=10, n_bins=16)
        est.push_batch(np.array([1, 2], dtype=np.int32))
        assert est.events_seen == 3


class TestStreamingBurstBatch:
    def test_update_batch_equals_repeated_update(self):
        rng = np.random.default_rng(2)
        hists = [rng.integers(0, 50, size=16) for _ in range(7)]
        one = StreamingBurstEstimator(n_bins=16)
        many = StreamingBurstEstimator(n_bins=16)
        for h in hists:
            one.update(h)
        many.update_batch(hists)
        np.testing.assert_array_equal(one.aggregate, many.aggregate)
        assert one.windows == many.windows
        a, b = one.analysis(), many.analysis()
        np.testing.assert_array_equal(a.hist, b.hist)
        assert a.threshold_bin == b.threshold_bin
        assert a.likelihood_ratio == b.likelihood_ratio
        assert a.significant == b.significant

    def test_update_batch_shape_mismatch(self):
        est = StreamingBurstEstimator(n_bins=16)
        with pytest.raises(DetectionError):
            est.update_batch([np.zeros(8, dtype=np.int64)])


class TestVectorRegisterBatch:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=300
        )
    )
    def test_batch_equals_per_record(self, pairs):
        cfg = AuditorConfig()
        one = VectorRegisterPair(cfg)
        many = VectorRegisterPair(cfg)
        for r, v in pairs:
            one.record(r, v)
        reps = np.array([p[0] for p in pairs], dtype=np.int64)
        vics = np.array([p[1] for p in pairs], dtype=np.int64)
        many.record_batch(reps, vics)
        assert one.swaps == many.swaps
        assert one.pending == many.pending
        r1, v1 = one.drain()
        r2, v2 = many.drain()
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(v1, v2)

    def test_batch_rejects_out_of_range(self):
        from repro.errors import HardwareError

        pair = VectorRegisterPair(AuditorConfig())
        with pytest.raises(HardwareError):
            pair.record_batch(
                np.array([0, 8], dtype=np.int64),
                np.array([0, 0], dtype=np.int64),
            )
        assert pair.pending == 0


class TestEventTrainEdges:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 1_000), max_size=120),
        st.integers(0, 1_000),
        st.integers(0, 1_000),
    )
    def test_slice_is_half_open(self, times, t0, t1):
        train = EventTrain(np.array(sorted(times), dtype=np.int64))
        window = train.slice(t0, t1)
        expect = [t for t in sorted(times) if t0 <= t < t1]
        assert window.times.tolist() == expect

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_duplicates_preserved(self, times):
        doubled = sorted(times + times)
        train = EventTrain(np.array(doubled, dtype=np.int64))
        assert train.slice(0, 101).count == 2 * len(times)

    def test_endpoint_exactly_on_event(self):
        train = EventTrain(np.array([10, 20, 30], dtype=np.int64))
        assert train.slice(10, 30).times.tolist() == [10, 20]
        assert train.slice(10, 31).times.tolist() == [10, 20, 30]
        assert train.slice(11, 30).times.tolist() == [20]

    def test_empty_slice_and_empty_train(self):
        train = EventTrain(np.array([5], dtype=np.int64))
        assert train.slice(3, 3).count == 0
        assert train.slice(6, 4).count == 0
        assert EventTrain(np.zeros(0, dtype=np.int64)).mean_rate() == 0.0

    def test_mean_rate_default_span_includes_last_event(self):
        train = EventTrain(np.array([0, 9], dtype=np.int64))
        assert train.mean_rate() == pytest.approx(2 / 10)

    def test_mean_rate_empty_window_raises(self):
        train = EventTrain(np.array([5], dtype=np.int64))
        with pytest.raises(DetectionError):
            train.mean_rate(7, 7)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 500), min_size=1, max_size=60),
        st.integers(0, 500),
        st.integers(1, 500),
    )
    def test_mean_rate_consistent_with_slice(self, times, t0, width):
        t1 = t0 + width
        train = EventTrain(np.array(sorted(times), dtype=np.int64))
        rate = train.mean_rate(t0, t1)
        assert rate == pytest.approx(train.slice(t0, t1).count / (t1 - t0))
