"""Tests for Δt selection and density-histogram construction."""

import numpy as np
import pytest

from repro.core.density import (
    DensityHistogram,
    build_density_histogram,
    choose_delta_t,
    default_delta_t,
)
from repro.core.event_train import EventTrain
from repro.errors import DetectionError


class TestChooseDeltaT:
    def test_alpha_rule(self):
        # Mean rate 1/5000 cycles, alpha 20 -> Δt = 100k (the bus value).
        assert choose_delta_t(1 / 5000, alpha=20) == 100_000

    def test_clamped_low(self):
        assert choose_delta_t(1.0, alpha=1, min_dt=16) == 16

    def test_clamped_high(self):
        assert choose_delta_t(1e-9, alpha=10, max_dt=10_000_000) == 10_000_000

    def test_bad_rate(self):
        with pytest.raises(DetectionError):
            choose_delta_t(0.0, alpha=1)

    def test_bad_alpha(self):
        with pytest.raises(DetectionError):
            choose_delta_t(0.1, alpha=0)


class TestDefaults:
    def test_paper_values(self):
        assert default_delta_t("membus") == 100_000
        assert default_delta_t("divider") == 500

    def test_unknown_unit(self):
        with pytest.raises(DetectionError):
            default_delta_t("gpu")


class TestBuildHistogram:
    def test_basic(self):
        train = EventTrain(np.array([5, 6, 7, 105]))
        dh = build_density_histogram(train, dt=100, t0=0, t1=200)
        assert dh.hist[3] == 1  # one window with 3 events
        assert dh.hist[1] == 1  # one window with 1 event
        assert dh.n_windows == 2

    def test_empty_window_raises(self):
        train = EventTrain(np.array([1]))
        with pytest.raises(DetectionError):
            build_density_histogram(train, dt=10, t0=5, t1=5)

    def test_total_events_lower_bound(self):
        train = EventTrain(np.arange(50))
        dh = build_density_histogram(train, dt=10, t0=0, t1=50, n_bins=128)
        assert dh.total_events_lower_bound == 50

    def test_nonzero_bins(self):
        train = EventTrain(np.array([0, 1, 2, 50]))
        dh = build_density_histogram(train, dt=10, t0=0, t1=60)
        assert dh.nonzero_bins().tolist() == [0, 1, 3]


class TestMerge:
    def test_merged_with(self):
        a = DensityHistogram(np.array([1, 2, 0]), dt=10, window_start=0,
                             window_end=100)
        b = DensityHistogram(np.array([3, 0, 1]), dt=10, window_start=100,
                             window_end=200)
        merged = a.merged_with(b)
        assert merged.hist.tolist() == [4, 2, 1]
        assert merged.window_start == 0
        assert merged.window_end == 200

    def test_mismatched_dt_rejected(self):
        a = DensityHistogram(np.zeros(3), dt=10, window_start=0, window_end=1)
        b = DensityHistogram(np.zeros(3), dt=20, window_start=0, window_end=1)
        with pytest.raises(DetectionError):
            a.merged_with(b)

    def test_mismatched_bins_rejected(self):
        a = DensityHistogram(np.zeros(3), dt=10, window_start=0, window_end=1)
        b = DensityHistogram(np.zeros(4), dt=10, window_start=0, window_end=1)
        with pytest.raises(DetectionError):
            a.merged_with(b)
