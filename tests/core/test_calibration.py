"""Tests for Δt / α calibration."""

import numpy as np
import pytest

from repro.config import DIVIDER_DELTA_T_CYCLES, MEMBUS_DELTA_T_CYCLES
from repro.core.calibration import (
    DeltaTRegime,
    assess_delta_t,
    calibrate_alpha,
    paper_bus_calibration,
    paper_divider_calibration,
)
from repro.errors import DetectionError


class TestCalibrateAlpha:
    def test_bus_recovers_paper_delta_t(self):
        calibration = paper_bus_calibration()
        assert calibration.delta_t == MEMBUS_DELTA_T_CYCLES

    def test_divider_recovers_paper_delta_t(self):
        calibration = paper_divider_calibration()
        assert calibration.delta_t == pytest.approx(
            DIVIDER_DELTA_T_CYCLES, rel=0.01
        )

    def test_cluster_caps_window(self):
        calibration = calibrate_alpha(
            "x", burst_event_rate=1e-6, min_cluster_cycles=1_000,
            mean_event_rate=1e-6,
        )
        # 20 events at 1e-6/cycle would need 20M cycles; clusters cap it.
        assert calibration.delta_t == 1_000

    def test_bad_rates(self):
        with pytest.raises(DetectionError):
            calibrate_alpha("x", 0.0, 100, 0.1)
        with pytest.raises(DetectionError):
            calibrate_alpha("x", 0.1, 100, 0.1, target_burst_density=1.0)

    def test_summary_text(self):
        assert "membus" in paper_bus_calibration().summary()


class TestAssessDeltaT:
    def _bursty_train(self, burst_period=5_000, horizon=50_000_000):
        # One event per 5k cycles in bursts of 100k, every 1M cycles.
        times = []
        for burst_start in range(0, horizon, 1_000_000):
            times.extend(range(burst_start, burst_start + 100_000, 5_000))
        return np.array(times)

    def test_paper_delta_t_usable(self):
        times = self._bursty_train()
        regime = assess_delta_t(times, 100_000, 0, 50_000_000)
        assert regime is DeltaTRegime.USABLE

    def test_tiny_delta_t_poisson(self):
        times = self._bursty_train()
        regime = assess_delta_t(times, 500, 0, 50_000_000)
        assert regime is DeltaTRegime.POISSON

    def test_huge_delta_t_normal(self):
        times = self._bursty_train()
        regime = assess_delta_t(times, 10_000_000, 0, 50_000_000)
        assert regime is DeltaTRegime.NORMAL

    def test_bad_window(self):
        with pytest.raises(DetectionError):
            assess_delta_t([1, 2], 0, 0, 10)
        with pytest.raises(DetectionError):
            assess_delta_t([1, 2], 10, 5, 5)
