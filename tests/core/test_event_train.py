"""Tests for event trains and pair-identifier extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.event_train import (
    EventTrain,
    LabeledEventTrain,
    canonical_pair_ids,
    compact_pair_identifiers,
    dominant_pair_series,
)
from repro.errors import DetectionError


class TestEventTrain:
    def test_sorted_on_construction(self):
        train = EventTrain(np.array([30, 10, 20]))
        assert train.times.tolist() == [10, 20, 30]

    def test_count_and_span(self):
        train = EventTrain(np.array([100, 500]))
        assert train.count == 2
        assert train.span == 400

    def test_span_of_singleton(self):
        assert EventTrain(np.array([5])).span == 0

    def test_slice(self):
        train = EventTrain(np.arange(0, 100, 10))
        assert train.slice(25, 55).times.tolist() == [30, 40, 50]

    def test_mean_rate(self):
        train = EventTrain(np.arange(0, 1000, 10))
        assert train.mean_rate(0, 1000) == pytest.approx(0.1)

    def test_mean_rate_empty_window_raises(self):
        with pytest.raises(DetectionError):
            EventTrain(np.array([1])).mean_rate(5, 5)

    def test_density_counts(self):
        train = EventTrain(np.array([1, 2, 15, 16, 17]))
        assert train.density_counts(10, 0, 20).tolist() == [2, 3]

    def test_inter_event_intervals(self):
        train = EventTrain(np.array([0, 5, 20]))
        assert train.inter_event_intervals().tolist() == [5, 15]


class TestLabeledEventTrain:
    def test_alignment_checked(self):
        with pytest.raises(DetectionError):
            LabeledEventTrain(
                np.array([1, 2]), np.array([0]), np.array([1])
            )

    def test_sorted_by_time(self):
        train = LabeledEventTrain(
            np.array([20, 10]), np.array([1, 2]), np.array([2, 1])
        )
        assert train.replacers.tolist() == [2, 1]

    def test_pair_identifiers_first_appearance(self):
        train = LabeledEventTrain(
            np.array([0, 1, 2, 3]),
            np.array([2, 0, 2, 5]),
            np.array([0, 2, 0, 1]),
        )
        # (2,0) appears first -> 0, (0,2) -> 1, (5,1) -> 2.
        assert train.pair_identifiers().tolist() == [0, 1, 0, 2]

    def test_explicit_pair_ids(self):
        ids = canonical_pair_ids(spy_ctx=2, trojan_ctx=0)
        train = LabeledEventTrain(
            np.array([0, 1]), np.array([0, 2]), np.array([2, 0]), ids
        )
        assert train.pair_identifiers().tolist() == [1, 0]

    def test_unlabeled(self):
        train = LabeledEventTrain(
            np.array([5, 1]), np.array([0, 1]), np.array([1, 0])
        )
        assert train.unlabeled().times.tolist() == [1, 5]

    def test_slice_preserves_labels(self):
        train = LabeledEventTrain(
            np.array([0, 10, 20]), np.array([0, 1, 2]), np.array([1, 2, 0])
        )
        sliced = train.slice(5, 15)
        assert sliced.replacers.tolist() == [1]


class TestCompactPairIdentifiers:
    def test_first_appearance_numbering(self):
        reps = np.array([2, 0, 2, 3])
        vics = np.array([0, 2, 0, 1])
        assert compact_pair_identifiers(reps, vics).tolist() == [0, 1, 0, 2]

    def test_empty(self):
        empty = np.zeros(0)
        assert compact_pair_identifiers(empty, empty).size == 0

    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=100))
    def test_bijective_per_pair(self, pairs):
        reps = np.array([p[0] for p in pairs])
        vics = np.array([p[1] for p in pairs])
        ids = compact_pair_identifiers(reps, vics)
        mapping = {}
        for pair, idx in zip(pairs, ids):
            assert mapping.setdefault(pair, idx) == idx
        # Identifiers are dense: 0..k-1.
        assert sorted(set(ids.tolist())) == list(range(len(mapping)))


class TestDominantPairSeries:
    def test_extracts_dominant_pair(self):
        reps = np.array([0, 2, 0, 2, 5, 0])
        vics = np.array([2, 0, 2, 0, 1, 2])
        labels, idx, pair = dominant_pair_series(reps, vics)
        assert pair == (0, 2)
        assert idx.tolist() == [0, 1, 2, 3, 5]
        # Direction with replacer == min ctx labeled 1.
        assert labels.tolist() == [1, 0, 1, 0, 1]

    def test_self_events_excluded(self):
        reps = np.array([3, 3, 1])
        vics = np.array([3, 3, 2])
        labels, idx, pair = dominant_pair_series(reps, vics)
        assert pair == (1, 2)
        assert idx.tolist() == [2]

    def test_all_self_events(self):
        reps = np.array([3, 3])
        vics = np.array([3, 3])
        labels, idx, pair = dominant_pair_series(reps, vics)
        assert labels.size == 0
        assert pair == (-1, -1)

    def test_empty_input(self):
        labels, idx, pair = dominant_pair_series(np.zeros(0), np.zeros(0))
        assert labels.size == 0
