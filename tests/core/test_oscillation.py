"""Tests for oscillation (periodicity) detection on correlograms."""

import numpy as np
import pytest

from repro.core.autocorr import autocorrelogram
from repro.core.oscillation import analyze_autocorrelogram, find_peaks
from repro.errors import DetectionError


def square_train(half_period, repeats, noise_rate=0.0, seed=0):
    """A covert-like 0/1 run train with optional inserted noise labels."""
    rng = np.random.default_rng(seed)
    series = []
    for _ in range(repeats):
        series.extend([1] * half_period)
        series.extend([0] * half_period)
    series = np.array(series, dtype=float)
    if noise_rate > 0:
        n_noise = int(series.size * noise_rate)
        positions = rng.integers(0, series.size, n_noise)
        series = np.insert(series, positions, rng.integers(2, 4, n_noise))
    return series


class TestFindPeaks:
    def test_finds_periodic_peaks(self):
        acf = autocorrelogram(square_train(64, 20), 700)
        lags, heights = find_peaks(acf, min_height=0.4)
        assert lags.tolist() == [128, 256, 384, 512, 640]
        assert (heights > 0.7).all()

    def test_height_floor(self):
        acf = autocorrelogram(square_train(64, 20), 700)
        lags, _ = find_peaks(acf, min_height=1.01)
        assert lags.size == 0

    def test_ripples_suppressed_by_prominence(self):
        """Small ripples on a decaying slope must not count as peaks."""
        rng = np.random.default_rng(1)
        lags_axis = np.arange(500)
        decaying = np.exp(-lags_axis / 400) + rng.normal(0, 0.01, 500)
        decaying[0] = 1.0
        lags, _ = find_peaks(decaying, min_height=0.3)
        assert lags.size == 0

    def test_short_input(self):
        lags, heights = find_peaks(np.array([1.0, 0.5]), 0.3)
        assert lags.size == 0


class TestAnalyze:
    def test_clean_channel_train_significant(self):
        acf = autocorrelogram(square_train(128, 12), 1000)
        analysis = analyze_autocorrelogram(acf)
        assert analysis.significant
        assert analysis.dominant_period == pytest.approx(256, rel=0.05)
        assert analysis.min_dip < -0.8

    def test_noisy_channel_train_significant(self):
        """A few percent of inserted noise labels shift the wavelength
        slightly upward (the paper's 533 vs 512) without losing
        significance."""
        acf = autocorrelogram(square_train(128, 12, noise_rate=0.02), 1000)
        analysis = analyze_autocorrelogram(acf)
        assert analysis.significant
        assert 256 <= analysis.dominant_period <= 290

    def test_long_wavelength_single_peak_significant(self):
        """One wavelength fitting the lag range once: the dominant-peak
        signature (strong peak + deep dip) still fires."""
        acf = autocorrelogram(square_train(256, 8), 600)
        analysis = analyze_autocorrelogram(acf)
        assert analysis.significant
        assert analysis.min_dip < -0.5

    def test_white_noise_not_significant(self):
        rng = np.random.default_rng(0)
        acf = autocorrelogram(rng.integers(0, 2, 4000).astype(float), 1000)
        assert not analyze_autocorrelogram(acf).significant

    def test_slow_decay_not_significant(self):
        """Benign bursty phases: strong short-lag correlation that decays
        without anti-correlation — must not count as oscillation."""
        rng = np.random.default_rng(2)
        # AR(1)-style positively correlated series.
        x = np.zeros(4000)
        for i in range(1, 4000):
            x[i] = 0.995 * x[i - 1] + rng.normal()
        acf = autocorrelogram(x, 1000)
        assert not analyze_autocorrelogram(acf).significant

    def test_brief_periodicity_rejected(self):
        """The webserver case: periodicity only at small lags that dies
        out must fail the coverage requirement."""
        rng = np.random.default_rng(3)
        # A few short periodic episodes inside a long random train.
        parts = []
        for _ in range(6):
            parts.append(rng.integers(0, 2, 400).astype(float))
            parts.append(np.array(([1.0] * 10 + [0.0] * 10) * 4))
        acf = autocorrelogram(np.concatenate(parts), 1000)
        analysis = analyze_autocorrelogram(acf)
        assert not analysis.significant

    def test_no_peaks_result(self):
        acf = np.zeros(100)
        acf[0] = 1.0
        analysis = analyze_autocorrelogram(acf)
        assert not analysis.significant
        assert analysis.max_peak == 0.0
        assert analysis.dominant_period == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(DetectionError):
            analyze_autocorrelogram(np.array([1.0, 0.5]))

    def test_coverage_computed(self):
        acf = autocorrelogram(square_train(64, 20), 700)
        analysis = analyze_autocorrelogram(acf)
        assert analysis.coverage == pytest.approx(640 / 700, rel=0.05)
