"""Tests for the autocorrelation estimator (exact match to the paper's)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.autocorr import autocorrelation, autocorrelogram, dominant_lag
from repro.errors import DetectionError


def naive_r(x, p):
    """The paper's formula, computed directly."""
    x = np.asarray(x, dtype=np.float64)
    centered = x - x.mean()
    denom = (centered**2).sum()
    if denom == 0:
        return 1.0
    if p == 0:
        return 1.0
    return float((centered[: len(x) - p] * centered[p:]).sum() / denom)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        assert autocorrelation(np.array([1.0, 2.0, 3.0]), 0) == 1.0

    def test_alternating_series(self):
        x = np.array([0, 1] * 50, dtype=float)
        assert autocorrelation(x, 1) == pytest.approx(naive_r(x, 1))
        assert autocorrelation(x, 2) == pytest.approx(naive_r(x, 2))
        assert autocorrelation(x, 1) < -0.9
        assert autocorrelation(x, 2) > 0.9

    def test_constant_series(self):
        assert autocorrelation(np.full(10, 3.0), 3) == 1.0

    def test_bounds_checking(self):
        with pytest.raises(DetectionError):
            autocorrelation(np.array([1.0, 2.0]), 2)
        with pytest.raises(DetectionError):
            autocorrelation(np.array([1.0]), 0)


class TestAutocorrelogram:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=300)
        acf = autocorrelogram(x, 50)
        for p in (0, 1, 5, 25, 50):
            assert acf[p] == pytest.approx(naive_r(x, p), abs=1e-9)

    def test_square_wave_peaks_at_period(self):
        """The cache channel's train shape: runs of 0s and 1s of length L
        peak at lag 2L (the wavelength)."""
        L = 32
        x = np.array(([1] * L + [0] * L) * 20, dtype=float)
        acf = autocorrelogram(x, 3 * 2 * L)
        assert acf[2 * L] > 0.9
        assert acf[L] < -0.9

    def test_max_lag_clipped(self):
        acf = autocorrelogram(np.arange(10, dtype=float), 100)
        assert acf.size == 10  # lags 0..9

    def test_constant_series_all_ones(self):
        acf = autocorrelogram(np.full(20, 5.0), 10)
        assert (acf == 1.0).all()

    def test_negative_max_lag_rejected(self):
        with pytest.raises(DetectionError):
            autocorrelogram(np.arange(10, dtype=float), -1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(16, 256))
    def test_fft_equals_naive_everywhere(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 4, size=n).astype(float)
        acf = autocorrelogram(x, n - 1)
        probes = [1, n // 3, n // 2, n - 1]
        for p in probes:
            assert acf[p] == pytest.approx(naive_r(x, p), abs=1e-9)

    def test_acf_bounded_by_one_at_zero(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=500)
        acf = autocorrelogram(x, 100)
        assert acf[0] == pytest.approx(1.0)
        assert np.abs(acf).max() <= 1.0 + 1e-9


class TestDominantLag:
    def test_finds_peak(self):
        x = np.array(([1] * 16 + [0] * 16) * 10, dtype=float)
        acf = autocorrelogram(x, 100)
        assert dominant_lag(acf) == 32

    def test_respects_min_lag(self):
        acf = np.array([1.0, 0.9, 0.1, 0.8])
        assert dominant_lag(acf, min_lag=2) == 3

    def test_too_short_rejected(self):
        with pytest.raises(DetectionError):
            dominant_lag(np.array([1.0]), min_lag=1)
