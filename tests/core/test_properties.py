"""Cross-cutting property tests on the detection pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.autocorr import RunningAutocorrelogram, autocorrelogram
from repro.core.burst import StreamingBurstEstimator, analyze_histogram
from repro.core.clustering import analyze_recurrence
from repro.core.density import StreamingDensityHistogram, build_density_histogram
from repro.core.event_train import (
    EventTrain,
    compact_pair_identifiers,
    dominant_pair_series,
)
from repro.core.oscillation import analyze_autocorrelogram
from repro.util.stats import sample_counts_to_histogram


class TestDensityInvariants:
    @settings(max_examples=30)
    @given(
        st.lists(st.integers(0, 100_000), max_size=300),
        st.integers(16, 5_000),
    )
    def test_histogram_counts_every_window(self, times, dt):
        train = EventTrain(np.array(times, dtype=np.int64))
        dh = build_density_histogram(train, dt, 0, 100_001)
        assert dh.n_windows == -(-100_001 // dt)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 9_999), min_size=1, max_size=300))
    def test_no_events_lost_below_clamp(self, times):
        train = EventTrain(np.array(times, dtype=np.int64))
        dh = build_density_histogram(train, 10_000, 0, 10_000, n_bins=1024)
        # A single window wide enough for everything: exact count.
        assert dh.total_events_lower_bound == len(times)


class TestPairSeriesInvariants:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=200,
        )
    )
    def test_dominant_pair_subsequence_well_formed(self, pairs):
        reps = np.array([p[0] for p in pairs], dtype=np.int64)
        vics = np.array([p[1] for p in pairs], dtype=np.int64)
        labels, idx, pair = dominant_pair_series(reps, vics)
        assert labels.size == idx.size
        assert set(np.unique(labels).tolist()) <= {0, 1}
        if labels.size:
            a, b = pair
            assert a != b
            for i, label in zip(idx, labels):
                assert {int(reps[i]), int(vics[i])} == {a, b}
                assert (int(reps[i]) == a) == bool(label)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=1,
            max_size=200,
        )
    )
    def test_compact_ids_affine_safe(self, pairs):
        """Compact identifiers are bounded by the number of distinct pairs
        (never the raw packed values)."""
        reps = np.array([p[0] for p in pairs], dtype=np.int64)
        vics = np.array([p[1] for p in pairs], dtype=np.int64)
        ids = compact_pair_identifiers(reps, vics)
        assert ids.max() < len(set(pairs))


class TestAnalysisRobustness:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(8, 400))
    def test_oscillation_analysis_never_crashes(self, seed, n):
        rng = np.random.default_rng(seed)
        series = rng.integers(0, 3, size=max(n, 8)).astype(float)
        acf = autocorrelogram(series, 200)
        analysis = analyze_autocorrelogram(acf)
        assert 0.0 <= analysis.coverage <= 1.0
        assert analysis.max_peak <= 1.0 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 24))
    def test_recurrence_never_crashes(self, seed, n_windows):
        rng = np.random.default_rng(seed)
        hists = [
            rng.integers(0, 50, 128).astype(np.int64)
            for _ in range(n_windows)
        ]
        result = analyze_recurrence(hists, rng=seed)
        assert result.n_windows == n_windows
        assert result.cluster_labels.size == n_windows
        assert 0.0 <= result.burst_window_fraction <= 1.0


def _chunked(rng, arr):
    """Split an array into random-size chunks (including empty ones)."""
    chunks = []
    i = 0
    while i < len(arr):
        step = int(rng.integers(0, 9))
        chunks.append(arr[i:i + step])
        i += step
    return chunks


class TestStreamingEqualsBatch:
    """The pipeline's incremental estimators must match the batch ones."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(2, 300),
        st.integers(0, 80),
    )
    def test_running_autocorrelogram_matches_fft(self, seed, n, max_lag):
        rng = np.random.default_rng(seed)
        series = rng.integers(0, 2, size=n).astype(np.int64)
        running = RunningAutocorrelogram(max_lag)
        for chunk in _chunked(rng, series):
            running.extend(chunk)
        batch = autocorrelogram(series, max_lag)
        streamed = running.correlogram()
        assert streamed.shape == batch.shape
        # Integer series: both paths sum exact integers; only the FFT's
        # own float round-off separates them.
        assert np.allclose(streamed, batch, atol=1e-9, rtol=0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 200))
    def test_running_autocorrelogram_float_series(self, seed, n):
        rng = np.random.default_rng(seed)
        series = rng.normal(scale=5.0, size=n)
        running = RunningAutocorrelogram(50)
        running.extend(series)
        assert np.allclose(
            running.correlogram(), autocorrelogram(series, 50), atol=1e-7
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 100_000), max_size=300),
        st.integers(16, 5_000),
        st.integers(0, 10_000),
    )
    def test_streaming_density_from_times_bit_exact(self, times, dt, seed):
        rng = np.random.default_rng(seed)
        horizon = 100_001
        train = EventTrain(np.array(times, dtype=np.int64))
        batch = sample_counts_to_histogram(
            train.density_counts(dt, 0, horizon), 128
        )
        streaming = StreamingDensityHistogram(dt=dt)
        sorted_times = np.sort(np.array(times, dtype=np.int64))
        cuts = np.sort(rng.integers(0, horizon, size=3)).tolist() + [horizon]
        prev = 0
        for cut in cuts:
            chunk = sorted_times[(sorted_times >= prev) & (sorted_times < cut)]
            streaming.push_times(chunk, cut)
            prev = cut
        streaming.flush()
        assert np.array_equal(streaming.histogram(), batch)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=400),
        st.integers(0, 10_000),
    )
    def test_streaming_density_from_counts_bit_exact(self, counts, seed):
        rng = np.random.default_rng(seed)
        arr = np.array(counts, dtype=np.int64)
        batch = sample_counts_to_histogram(arr, 128)
        streaming = StreamingDensityHistogram(dt=100)
        for chunk in _chunked(rng, arr):
            streaming.ingest_window_counts(chunk)
        assert np.array_equal(streaming.read_and_reset(), batch)

    def test_streaming_density_matches_monitor_slot_saturation(self):
        from repro.config import AuditorConfig
        from repro.hardware.auditor import MonitorSlot

        cfg = AuditorConfig()
        slot = MonitorSlot(unit_name="x", dt=100, config=cfg)
        streaming = StreamingDensityHistogram(
            dt=100,
            n_bins=cfg.histogram_bins,
            count_clamp=cfg.accumulator_max,
            entry_max=cfg.histogram_entry_max,
        )
        rng = np.random.default_rng(3)
        counts = rng.integers(0, 200_000, size=5_000)
        slot.ingest_window_counts(counts)
        streaming.ingest_window_counts(counts)
        assert np.array_equal(slot.read_and_reset(), streaming.read_and_reset())

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 30))
    def test_streaming_burst_estimator_matches_batch(self, seed, n_hists):
        rng = np.random.default_rng(seed)
        hists = rng.integers(0, 40, size=(n_hists, 128)).astype(np.int64)
        estimator = StreamingBurstEstimator()
        for hist in hists:
            estimator.update(hist)
        streamed = estimator.analysis()
        batch = analyze_histogram(hists.sum(axis=0))
        assert streamed.threshold_bin == batch.threshold_bin
        assert streamed.likelihood_ratio == batch.likelihood_ratio
        assert streamed.significant == batch.significant
        assert np.array_equal(streamed.hist, batch.hist)


class TestDeterminism:
    def test_same_seed_same_verdict(self):
        from repro.analysis.figures import run_channel_session
        from repro.util.bitstream import Message

        def verdict():
            run = run_channel_session(
                "membus", Message.random(20, 5), bandwidth_bps=100.0, seed=5
            )
            v = run.hunter.report().verdicts[0]
            return (v.detected, v.max_likelihood_ratio,
                    run.machine.bus_lock_tap.count)

        assert verdict() == verdict()
