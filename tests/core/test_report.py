"""Tests for detection reports and rendering."""

import pytest

from repro.core.report import DetectionReport, UnitVerdict


def burst_verdict(detected=True):
    return UnitVerdict(
        unit="membus",
        method="burst",
        detected=detected,
        quanta_analyzed=8,
        max_likelihood_ratio=0.97,
        recurrent=detected,
        burst_window_fraction=0.5,
    )


def osc_verdict(detected=False):
    return UnitVerdict(
        unit="cache",
        method="oscillation",
        detected=detected,
        quanta_analyzed=4,
        oscillating_windows=2 if detected else 0,
        max_peak=0.91 if detected else 0.2,
        dominant_period=512.0 if detected else None,
    )


class TestUnitVerdict:
    def test_burst_summary_mentions_lr(self):
        text = burst_verdict().summary()
        assert "membus" in text
        assert "0.970" in text
        assert "COVERT TIMING CHANNEL LIKELY" in text

    def test_clear_summary(self):
        text = burst_verdict(detected=False).summary()
        assert "clear" in text

    def test_oscillation_summary_mentions_peak(self):
        text = osc_verdict(detected=True).summary()
        assert "0.910" in text
        assert "512" in text

    def test_notes_rendered(self):
        verdict = UnitVerdict(
            unit="x", method="burst", detected=False, quanta_analyzed=0,
            notes=("no quanta observed",),
        )
        assert "no quanta observed" in verdict.summary()


class TestDetectionReport:
    def test_any_detected(self):
        report = DetectionReport((burst_verdict(True), osc_verdict(False)))
        assert report.any_detected

    def test_none_detected(self):
        report = DetectionReport((burst_verdict(False), osc_verdict(False)))
        assert not report.any_detected

    def test_verdict_lookup(self):
        report = DetectionReport((burst_verdict(), osc_verdict()))
        assert report.verdict_for("cache").method == "oscillation"
        with pytest.raises(KeyError):
            report.verdict_for("gpu")

    def test_render_empty(self):
        assert "no units" in DetectionReport(()).render()

    def test_render_contains_all_units(self):
        text = DetectionReport((burst_verdict(), osc_verdict())).render()
        assert "membus" in text
        assert "cache" in text
        assert "overall" in text
