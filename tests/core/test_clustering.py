"""Tests for k-means and recurrence analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import analyze_recurrence, kmeans
from repro.errors import DetectionError


def covert_hist(seed=0):
    rng = np.random.default_rng(seed)
    hist = np.zeros(128, dtype=np.int64)
    hist[0] = 2000 + int(rng.integers(0, 100))
    hist[20] = 200 + int(rng.integers(0, 30))
    return hist


def quiet_hist(seed=0):
    rng = np.random.default_rng(seed)
    hist = np.zeros(128, dtype=np.int64)
    hist[0] = 2400
    hist[1] = int(rng.integers(0, 5))
    return hist


class TestKMeans:
    def test_separates_two_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.5, (20, 3))
        b = rng.normal(10, 0.5, (20, 3))
        X = np.vstack([a, b])
        labels, centroids, inertia = kmeans(X, 2, rng=1)
        assert len(set(labels[:20].tolist())) == 1
        assert len(set(labels[20:].tolist())) == 1
        assert labels[0] != labels[20]

    def test_k_one(self):
        X = np.arange(12, dtype=float).reshape(6, 2)
        labels, centroids, _ = kmeans(X, 1)
        assert (labels == 0).all()
        assert centroids[0].tolist() == X.mean(axis=0).tolist()

    def test_k_equals_n(self):
        X = np.array([[0.0], [10.0], [20.0]])
        labels, _, inertia = kmeans(X, 3)
        assert sorted(labels.tolist()) == [0, 1, 2]
        assert inertia == pytest.approx(0.0)

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(30, 4))
        a = kmeans(X, 3, rng=7)[0]
        b = kmeans(X, 3, rng=7)[0]
        assert a.tolist() == b.tolist()

    def test_bad_k(self):
        with pytest.raises(DetectionError):
            kmeans(np.zeros((3, 2)), 4)

    def test_bad_shape(self):
        with pytest.raises(DetectionError):
            kmeans(np.zeros(5), 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.integers(2, 5))
    def test_inertia_non_negative_and_labels_valid(self, seed, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(24, 3))
        labels, centroids, inertia = kmeans(X, k, rng=seed)
        assert inertia >= 0
        assert labels.min() >= 0
        assert labels.max() < k
        assert centroids.shape == (k, 3)


class TestRecurrence:
    def test_recurrent_channel_pattern(self):
        """Covert quanta interleaved with quiet quanta recur."""
        hists = []
        for i in range(16):
            hists.append(covert_hist(i) if i % 2 == 0 else quiet_hist(i))
        result = analyze_recurrence(hists)
        assert result.recurrent
        assert result.burst_clusters
        assert result.burst_window_fraction == pytest.approx(0.5, abs=0.15)

    def test_continuous_channel_recurrent(self):
        hists = [covert_hist(i) for i in range(8)]
        result = analyze_recurrence(hists)
        assert result.recurrent

    def test_quiet_windows_not_recurrent(self):
        hists = [quiet_hist(i) for i in range(16)]
        result = analyze_recurrence(hists)
        assert not result.recurrent
        assert not result.burst_clusters

    def test_single_burst_episode_not_recurrent(self):
        """One isolated bursty quantum among many quiet ones: no recurrence."""
        hists = [quiet_hist(i) for i in range(15)]
        hists.insert(7, covert_hist(0))
        result = analyze_recurrence(hists)
        assert not result.recurrent

    def test_low_lr_bursts_not_flagged(self):
        """Mailserver-like windows: second mode with LR < 0.5."""
        hist = np.zeros(128, dtype=np.int64)
        hist[0] = 20_000
        hist[1] = 200
        hist[2] = 60
        hist[3] = 30
        hist[6] = 8
        result = analyze_recurrence([hist.copy() for _ in range(8)])
        assert not result.burst_clusters
        assert not result.recurrent

    def test_window_cap_keeps_recent(self):
        hists = [covert_hist(i) for i in range(8)]
        result = analyze_recurrence(hists, max_windows=4)
        assert result.n_windows == 4

    def test_empty_rejected(self):
        with pytest.raises(DetectionError):
            analyze_recurrence([])

    def test_mismatched_bins_rejected(self):
        with pytest.raises(DetectionError):
            analyze_recurrence([np.zeros(128), np.zeros(64)])

    def test_explicit_k(self):
        hists = [covert_hist(i) for i in range(6)]
        result = analyze_recurrence(hists, k=2)
        assert len(set(result.cluster_labels.tolist())) <= 2
