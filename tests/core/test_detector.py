"""Tests for the CCHunter facade (audit slots, per-quantum flow, verdicts)."""

import pytest

from repro.core.detector import AuditUnit, CCHunter
from repro.errors import DetectionError, HardwareError
from repro.sim.engine import Priority
from repro.sim.process import (
    BusLockBurst,
    CacheAccessSeries,
    DividerLoop,
    DividerSaturate,
    Process,
    WaitUntil,
)


class TestAuditSetup:
    def test_two_unit_limit(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        hunter.audit(AuditUnit.DIVIDER, core=0)
        with pytest.raises(HardwareError):
            hunter.audit(AuditUnit.CACHE)

    def test_divider_needs_core(self, small_machine):
        hunter = CCHunter(small_machine)
        with pytest.raises(DetectionError):
            hunter.audit(AuditUnit.DIVIDER)

    def test_cache_once(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.CACHE)
        with pytest.raises((DetectionError, HardwareError)):
            hunter.audit(AuditUnit.CACHE)

    def test_monitors_in_use(self, small_machine):
        hunter = CCHunter(small_machine)
        assert hunter.monitors_in_use == 0
        hunter.audit(AuditUnit.MEMORY_BUS)
        assert hunter.monitors_in_use == 1

    def test_bad_window_fraction(self, small_machine):
        with pytest.raises(DetectionError):
            CCHunter(small_machine, window_fraction=0.0)

    def test_custom_dt(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.MEMORY_BUS, dt=5000)
        assert hunter.auditor.slot(0).dt == 5000


class TestBurstFlow:
    def test_histogram_recorded_per_quantum(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.MEMORY_BUS, dt=1000)

        def trojan(proc):
            yield BusLockBurst(count=100, period=100)

        small_machine.spawn(Process("t", body=trojan), ctx=0)
        small_machine.run_quanta(2)
        hists = hunter.burst_histograms(AuditUnit.MEMORY_BUS)
        assert len(hists) == 2
        assert hists[0].sum() > 0  # every Δt window counted

    def test_unaudited_unit_query_rejected(self, small_machine):
        hunter = CCHunter(small_machine)
        with pytest.raises(DetectionError):
            hunter.burst_histograms(AuditUnit.MEMORY_BUS)

    def test_empty_report(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        report = hunter.report()
        verdict = report.verdicts[0]
        assert not verdict.detected
        assert verdict.quanta_analyzed == 0


class TestCacheFlow:
    def _pingpong(self, machine, rounds=40, sets=24):
        """Drive a miniature covert-style ping-pong over a few sets."""
        ways = machine.config.l2.associativity

        def trojan(proc):
            for r in range(rounds):
                yield WaitUntil(r * 60_000)
                accesses = []
                for s in range(sets):
                    base = r % ways
                    order = [(s, 100 + s * 16 + ((base + w) % ways))
                             for w in range(ways)]
                    accesses.extend(order)
                yield CacheAccessSeries(accesses=tuple(accesses))

        def spy(proc):
            for r in range(rounds):
                yield WaitUntil(r * 60_000 + 35_000)
                yield CacheAccessSeries(
                    accesses=tuple((s, 999_000 + s) for s in range(sets))
                )

        machine.spawn(Process("t", body=trojan), ctx=0)
        machine.spawn(Process("s", body=spy, priority=Priority.CONSUMER),
                      ctx=2)

    def test_oscillation_detected_on_pingpong(self, small_machine):
        hunter = CCHunter(small_machine, min_train_events=64, max_lag=400)
        hunter.audit(AuditUnit.CACHE)
        self._pingpong(small_machine)
        small_machine.run_quanta(1)
        verdict = hunter.report().verdicts[0]
        assert verdict.detected
        assert verdict.max_peak is not None and verdict.max_peak > 0.6

    def test_cache_analyses_exposed(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.CACHE)
        self._pingpong(small_machine)
        small_machine.run_quanta(1)
        assert len(hunter.cache_analyses()) >= 1

    def test_cache_analyses_without_audit_rejected(self, small_machine):
        hunter = CCHunter(small_machine)
        with pytest.raises(DetectionError):
            hunter.cache_analyses()

    def test_quiet_cache_not_detected(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.CACHE)
        small_machine.run_quanta(1)
        assert not hunter.report().verdicts[0].detected


class TestDividerFlow:
    def test_divider_burst_histograms(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.DIVIDER, core=0)

        def trojan(proc):
            yield DividerSaturate(duration=200_000)

        def spy(proc):
            yield DividerLoop(iterations=1500, divs_per_iter=4)

        small_machine.spawn(Process("t", body=trojan), ctx=0)
        small_machine.spawn(
            Process("s", body=spy, priority=Priority.CONSUMER), ctx=1
        )
        small_machine.run_quanta(1)
        hist = hunter.burst_histograms(AuditUnit.DIVIDER, core=0)[0]
        # The saturated overlap produces the high-density mode (~96).
        assert hist[80:110].sum() > 0


class TestDetectionLatency:
    def test_cache_first_detection_quantum(self, small_machine):
        hunter = CCHunter(small_machine, min_train_events=64, max_lag=400)
        hunter.audit(AuditUnit.CACHE)
        TestCacheFlow()._pingpong(small_machine)
        small_machine.run_quanta(2)
        assert hunter.first_detection_quantum(AuditUnit.CACHE) == 0

    def test_never_detected_returns_none(self, small_machine):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        small_machine.run_quanta(2)
        assert hunter.first_detection_quantum(AuditUnit.MEMORY_BUS) is None

    def test_unaudited_unit_raises(self, small_machine):
        hunter = CCHunter(small_machine)
        with pytest.raises(DetectionError):
            hunter.first_detection_quantum(AuditUnit.MEMORY_BUS)
        with pytest.raises(DetectionError):
            hunter.first_detection_quantum(AuditUnit.CACHE)

    def test_burst_latency_matches_recurrence_onset(self):
        """A bus channel becomes detectable once >= 2 burst quanta have
        accumulated and spread."""
        from repro.channels.base import ChannelConfig
        from repro.channels.membus import MemoryBusCovertChannel
        from repro.sim.machine import Machine
        from repro.util.bitstream import Message

        machine = Machine(seed=91)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        channel = MemoryBusCovertChannel(
            machine,
            ChannelConfig(message=Message.from_bits([1, 0] * 15),
                          bandwidth_bps=100.0),
        )
        channel.deploy(trojan_ctx=0, spy_ctx=2)
        machine.run_quanta(channel.quanta_needed())
        latency = hunter.first_detection_quantum(AuditUnit.MEMORY_BUS)
        assert latency is not None
        assert 0 < latency <= 2  # ~10 bits per quantum: detected early
        assert hunter.report().verdicts[0].detected
