"""Tests for the metrics registry and its exposition formats."""

import json
import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    get_default,
    load_snapshot,
    metric_names,
    new_default,
    render_prometheus,
    set_default,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = MetricsRegistry().counter("x_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(MetricsError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("x")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_observe_places_in_bucket(self):
        h = MetricsRegistry().histogram("x_seconds", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(10.0)   # inclusive upper bound
        h.observe(100.0)  # overflow -> implicit +Inf bucket
        assert h.counts == [1, 1, 1]
        assert h.cumulative() == [1, 2, 3]
        assert h.count == 3
        assert h.sum == pytest.approx(110.5)

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 1e-6
        assert DEFAULT_LATENCY_BUCKETS[-1] == 5.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("x", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.counter("a_total", labels={"unit": "m"}) is not (
            reg.counter("a_total")
        )
        assert reg.counter("a_total", labels={"unit": "m"}) is (
            reg.counter("a_total", labels={"unit": "m"})
        )

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(MetricsError):
            reg.gauge("a")

    def test_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,))
        with pytest.raises(MetricsError):
            reg.histogram("h", buckets=(2.0,))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("0bad")
        with pytest.raises(MetricsError):
            reg.counter("ok", labels={"0bad": "v"})


class TestSnapshot:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter", labels={"unit": "membus"}).inc(3)
        reg.gauge("g", "a gauge").set(1.5)
        reg.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0)).observe(
            0.05
        )
        return reg

    def test_to_dict_shape(self):
        snap = self._populated().to_dict()
        assert snap["format"] == "repro.obs.metrics/v1"
        counter = snap["metrics"]["c_total"]
        assert counter["type"] == "counter"
        assert counter["series"] == [
            {"labels": {"unit": "membus"}, "value": 3.0}
        ]
        hist = snap["metrics"]["h_seconds"]["series"][0]
        assert hist["buckets"] == [["0.1", 1], ["1", 1], ["+Inf", 1]]
        assert hist["count"] == 1

    def test_json_roundtrip(self, tmp_path):
        reg = self._populated()
        path = str(tmp_path / "metrics.json")
        reg.write_json(path)
        snap = load_snapshot(path)
        assert snap == reg.to_dict()
        assert list(metric_names(snap)) == ["c_total", "g", "h_seconds"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(MetricsError):
            load_snapshot(str(path))

    def test_prometheus_names_match_json(self, tmp_path):
        """Live exposition and re-rendered --metrics-out JSON agree."""
        reg = self._populated()
        path = str(tmp_path / "metrics.json")
        reg.write_json(path)
        assert render_prometheus(load_snapshot(path)) == (
            reg.render_prometheus()
        )

    def test_prometheus_text_format(self):
        text = self._populated().render_prometheus()
        assert "# TYPE c_total counter" in text
        assert 'c_total{unit="membus"} 3' in text
        assert "# HELP g a gauge" in text
        assert "g 1.5" in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"unit": 'a"b\\c'}).inc()
        assert 'unit="a\\"b\\\\c"' in reg.render_prometheus()

    def test_render_rejects_foreign_snapshot(self):
        with pytest.raises(MetricsError):
            render_prometheus({"metrics": {}})


class TestNullRegistry:
    def test_records_nothing(self):
        reg = NullRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(5)
        reg.gauge("g").inc()
        reg.gauge("g").dec()
        reg.histogram("h").observe(5)
        assert reg.counter("c").value == 0
        assert reg.gauge("g").value == 0
        assert reg.histogram("h").count == 0
        assert reg.to_dict()["metrics"] == {}

    def test_disabled_flag(self):
        assert MetricsRegistry.enabled is True
        assert NULL_REGISTRY.enabled is False


class TestDefaultRegistry:
    def test_new_default_installs_fresh_registry(self):
        old = get_default()
        try:
            fresh = new_default()
            assert get_default() is fresh
            assert fresh is not old
            assert math.isfinite(fresh.counter("x").value)
        finally:
            set_default(old)


class TestMerge:
    """Merge semantics (docs/OBSERVABILITY.md): counters sum, gauges take
    the incoming value per label set, histogram buckets add."""

    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("jobs_total").inc(3)
        b.counter("jobs_total").inc(4)
        b.counter("other_total", labels={"k": "v"}).inc(2)
        a.merge(b.to_dict())
        assert a.counter("jobs_total").value == 7
        assert a.counter("other_total", labels={"k": "v"}).value == 2

    def test_gauges_last_writer_wins_per_label_set(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth", labels={"unit": "bus"}).set(5)
        a.gauge("depth", labels={"unit": "cache"}).set(9)
        b.gauge("depth", labels={"unit": "bus"}).set(2)
        a.merge(b.to_dict())
        assert a.gauge("depth", labels={"unit": "bus"}).value == 2
        # Label sets absent from the snapshot are untouched.
        assert a.gauge("depth", labels={"unit": "cache"}).value == 9

    def test_histogram_buckets_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        buckets = (1.0, 10.0)
        a.histogram("lat", buckets=buckets).observe(0.5)
        b.histogram("lat", buckets=buckets).observe(5.0)
        b.histogram("lat", buckets=buckets).observe(100.0)
        a.merge(b.to_dict())
        h = a.histogram("lat", buckets=buckets)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(105.5)

    def test_histogram_bucket_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        b.histogram("lat", buckets=(2.0, 20.0)).observe(0.5)
        with pytest.raises(MetricsError):
            a.merge(b.to_dict())

    def test_histogram_boundary_mismatch_fails_loudly_not_silently(self):
        """A mismatch must never mis-add counts — and the error says why."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        b.histogram("lat", buckets=(1.0, 20.0)).observe(15.0)
        before = [c for c in a.histogram("lat", buckets=(1.0, 10.0)).counts]
        with pytest.raises(MetricsError, match="do not match"):
            a.merge(b.to_dict())
        # The failed merge left the existing series untouched.
        assert a.histogram("lat", buckets=(1.0, 10.0)).counts == before

    def test_histogram_snapshot_without_inf_terminal_rejected(self):
        """A truncated snapshot (no +Inf overflow bucket) used to drop a
        real bucket via [:-1] and silently fold its counts into the
        overflow of the existing series; now it raises."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        snapshot = b.to_dict()
        snapshot["metrics"]["lat"] = {
            "type": "histogram",
            "help": "",
            "series": [{
                "labels": {},
                # Terminal bound is a real bucket, not +Inf: corrupt.
                "buckets": [["1", 1], ["10", 2], ["100", 3]],
                "sum": 12.0,
                "count": 3,
            }],
        }
        with pytest.raises(MetricsError, match=r"\+Inf"):
            a.merge(snapshot)
        assert a.histogram("lat", buckets=(1.0, 10.0)).count == 1

    def test_creates_missing_families_and_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("fresh_total", "docs", labels={"x": "1"}).inc()
        b.histogram("fresh_seconds", buckets=(0.5,)).observe(0.1)
        a.merge(b.to_dict())
        snapshot = a.to_dict()
        assert a.counter("fresh_total", labels={"x": "1"}).value == 1
        assert snapshot["metrics"]["fresh_total"]["help"] == "docs"
        assert snapshot["metrics"]["fresh_seconds"]["series"][0]["count"] == 1

    def test_merge_is_associative_with_to_dict_roundtrip(self):
        """Merging via a JSON round-trip equals merging the live snapshot."""
        a1, a2, b = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        b.counter("c_total").inc(2)
        b.histogram("h_seconds", buckets=(1e-3, 1.0)).observe(0.2)
        a1.merge(b.to_dict())
        a2.merge(json.loads(json.dumps(b.to_dict())))
        assert a1.to_dict() == a2.to_dict()

    def test_foreign_snapshot_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().merge({"metrics": {}})

    def test_null_registry_merge_is_noop(self):
        b = MetricsRegistry()
        b.counter("c_total").inc()
        NULL_REGISTRY.merge(b.to_dict())
        assert NULL_REGISTRY.to_dict()["metrics"] == {}
