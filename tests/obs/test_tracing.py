"""Tests for the span recorder and trace_span context manager."""

import json

import pytest

from repro.obs.tracing import (
    SpanRecorder,
    disable_tracing,
    enable_tracing,
    get_recorder,
    trace_span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


class TestTraceSpan:
    def test_disabled_returns_shared_noop(self):
        assert not tracing_enabled()
        assert get_recorder() is None
        span_a = trace_span("analyzer.push", unit="membus")
        span_b = trace_span("sim.quantum")
        assert span_a is span_b  # shared no-op singleton
        with span_a:
            pass  # records nothing, raises nothing

    def test_enabled_records_name_duration_attrs(self):
        recorder = enable_tracing()
        assert tracing_enabled()
        assert get_recorder() is recorder
        with trace_span("analyzer.push", unit="membus", quantum=3):
            pass
        (span,) = recorder.spans()
        assert span.name == "analyzer.push"
        assert span.attrs == {"unit": "membus", "quantum": 3}
        assert span.duration >= 0.0
        assert span.start >= 0.0  # relative to recorder origin

    def test_span_recorded_even_when_body_raises(self):
        recorder = enable_tracing()
        with pytest.raises(ValueError):
            with trace_span("session.verdicts"):
                raise ValueError("boom")
        assert [s.name for s in recorder.spans()] == ["session.verdicts"]

    def test_disable_stops_recording(self):
        recorder = enable_tracing()
        with trace_span("a"):
            pass
        disable_tracing()
        with trace_span("b"):
            pass
        assert [s.name for s in recorder.spans()] == ["a"]


class TestSpanRecorder:
    def test_ring_buffer_keeps_newest(self):
        recorder = SpanRecorder(capacity=2)
        for i in range(5):
            recorder.record(f"s{i}", 0.0, 0.0, {})
        assert [s.name for s in recorder.spans()] == ["s3", "s4"]
        assert recorder.spans_recorded == 5
        assert recorder.spans_dropped == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_to_dicts(self):
        recorder = SpanRecorder()
        recorder.record("source.emit", recorder.origin + 1.0, 0.5, {"q": 1})
        (d,) = recorder.to_dicts()
        assert d == {
            "name": "source.emit",
            "start_s": pytest.approx(1.0),
            "duration_s": 0.5,
            "attrs": {"q": 1},
        }

    def test_chrome_trace_export(self, tmp_path):
        recorder = SpanRecorder()
        recorder.record("sim.quantum", recorder.origin, 0.002, {"quantum": 0})
        path = tmp_path / "trace.json"
        recorder.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "sim.quantum"
        assert event["dur"] == pytest.approx(2000.0)  # microseconds
        assert event["args"] == {"quantum": 0}

    def test_chrome_trace_events_carry_real_pid_tid(self):
        import os
        import threading

        recorder = SpanRecorder()
        recorder.record("sim.quantum", recorder.origin, 0.001, {})
        (event,) = recorder.to_chrome_trace()["traceEvents"]
        # Events from different worker processes must land on distinct
        # Chrome/Perfetto rows when their traces are merged, so the
        # recorder stamps the real ids, not the old hardcoded 0/0.
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()

    def test_clear(self):
        recorder = SpanRecorder()
        recorder.record("a", 0.0, 0.0, {})
        recorder.clear()
        assert recorder.spans() == []


class TestRingWraparound:
    """The ring under sustained pressure: multiple full wraps."""

    def test_multiple_wraps_keep_exactly_newest_window(self):
        recorder = SpanRecorder(capacity=4)
        for i in range(11):  # wraps the 4-slot ring twice and change
            recorder.record(f"s{i}", float(i), 0.1, {"i": i})
        names = [s.name for s in recorder.spans()]
        assert names == ["s7", "s8", "s9", "s10"]
        assert recorder.spans_recorded == 11
        assert recorder.spans_dropped == 7
        # Order inside the window stays chronological after wrapping.
        assert [s.attrs["i"] for s in recorder.spans()] == [7, 8, 9, 10]

    def test_exact_capacity_boundary_drops_nothing(self):
        recorder = SpanRecorder(capacity=3)
        for i in range(3):
            recorder.record(f"s{i}", float(i), 0.0, {})
        assert recorder.spans_dropped == 0
        recorder.record("s3", 3.0, 0.0, {})
        assert recorder.spans_dropped == 1
        assert [s.name for s in recorder.spans()] == ["s1", "s2", "s3"]

    def test_chrome_trace_export_of_wrapped_buffer(self, tmp_path):
        recorder = SpanRecorder(capacity=2)
        for i in range(5):
            recorder.record(
                f"span{i}", recorder.origin + i, 0.25, {"i": i}
            )
        path = tmp_path / "wrapped.json"
        recorder.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        # Only the retained window is exported — no ghost events from
        # evicted spans, and timestamps stay monotonic.
        assert [e["name"] for e in events] == ["span3", "span4"]
        assert [e["args"]["i"] for e in events] == [3, 4]
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert all(e["dur"] == pytest.approx(250000.0) for e in events)

    def test_wrapped_to_dicts_matches_spans(self):
        recorder = SpanRecorder(capacity=2)
        for i in range(4):
            recorder.record(f"s{i}", recorder.origin + i, 0.1, {})
        dicts = recorder.to_dicts()
        assert [d["name"] for d in dicts] == ["s2", "s3"]
        assert [d["start_s"] for d in dicts] == [
            pytest.approx(2.0), pytest.approx(3.0),
        ]


class TestTraceContext:
    def test_ids_are_fresh_and_sized(self):
        from repro.obs.tracing import new_span_id, new_trace_id

        trace_ids = {new_trace_id() for _ in range(16)}
        span_ids = {new_span_id() for _ in range(16)}
        assert len(trace_ids) == 16 and len(span_ids) == 16
        assert all(len(t) == 16 for t in trace_ids)
        assert all(len(s) == 8 for s in span_ids)

    def test_context_defaults(self):
        from repro.obs.tracing import TraceContext

        ctx = TraceContext("abc123")
        assert ctx.trace_id == "abc123" and ctx.parent_span == ""


class TestMergeRemoteTrace:
    def build_recorder(self, names, trace_id=None):
        recorder = SpanRecorder(capacity=16)
        for i, name in enumerate(names):
            attrs = {"i": i}
            if trace_id is not None:
                attrs["trace_id"] = trace_id
            recorder.record(name, recorder.origin + i, 0.5, attrs)
        return recorder

    def test_sources_get_distinct_pids_and_labels(self):
        from repro.obs.tracing import merge_remote_trace

        client = self.build_recorder(["client.emit", "client.wire"])
        server = self.build_recorder(["serve.fold"])
        doc = merge_remote_trace(
            client, server, names=("client", "server")
        )
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert [(m["pid"], m["args"]["name"]) for m in meta] == [
            (0, "client"), (1, "server"),
        ]
        spans = [e for e in events if e["ph"] == "X"]
        by_pid = {e["name"]: e["pid"] for e in spans}
        assert by_pid == {
            "client.emit": 0, "client.wire": 0, "serve.fold": 1,
        }

    def test_trace_id_filter_keeps_one_conversation(self):
        from repro.obs.tracing import merge_remote_trace

        recorder = SpanRecorder(capacity=16)
        recorder.record("mine", recorder.origin, 0.1, {"trace_id": "aaaa"})
        recorder.record("other", recorder.origin + 1, 0.1,
                        {"trace_id": "bbbb"})
        recorder.record("untagged", recorder.origin + 2, 0.1, {})
        doc = merge_remote_trace(recorder, trace_id="aaaa")
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["mine"]

    def test_accepts_chrome_trace_dicts(self):
        from repro.obs.tracing import merge_remote_trace

        recorder = self.build_recorder(["live.span"])
        exported = self.build_recorder(["loaded.span"]).to_chrome_trace()
        doc = merge_remote_trace(recorder, exported)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"live.span", "loaded.span"}
        # Nested metadata from the exported doc is not duplicated.
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 2

    def test_display_unit(self):
        from repro.obs.tracing import merge_remote_trace

        assert merge_remote_trace()["displayTimeUnit"] == "ms"
