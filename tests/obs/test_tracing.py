"""Tests for the span recorder and trace_span context manager."""

import json

import pytest

from repro.obs.tracing import (
    SpanRecorder,
    disable_tracing,
    enable_tracing,
    get_recorder,
    trace_span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


class TestTraceSpan:
    def test_disabled_returns_shared_noop(self):
        assert not tracing_enabled()
        assert get_recorder() is None
        span_a = trace_span("analyzer.push", unit="membus")
        span_b = trace_span("sim.quantum")
        assert span_a is span_b  # shared no-op singleton
        with span_a:
            pass  # records nothing, raises nothing

    def test_enabled_records_name_duration_attrs(self):
        recorder = enable_tracing()
        assert tracing_enabled()
        assert get_recorder() is recorder
        with trace_span("analyzer.push", unit="membus", quantum=3):
            pass
        (span,) = recorder.spans()
        assert span.name == "analyzer.push"
        assert span.attrs == {"unit": "membus", "quantum": 3}
        assert span.duration >= 0.0
        assert span.start >= 0.0  # relative to recorder origin

    def test_span_recorded_even_when_body_raises(self):
        recorder = enable_tracing()
        with pytest.raises(ValueError):
            with trace_span("session.verdicts"):
                raise ValueError("boom")
        assert [s.name for s in recorder.spans()] == ["session.verdicts"]

    def test_disable_stops_recording(self):
        recorder = enable_tracing()
        with trace_span("a"):
            pass
        disable_tracing()
        with trace_span("b"):
            pass
        assert [s.name for s in recorder.spans()] == ["a"]


class TestSpanRecorder:
    def test_ring_buffer_keeps_newest(self):
        recorder = SpanRecorder(capacity=2)
        for i in range(5):
            recorder.record(f"s{i}", 0.0, 0.0, {})
        assert [s.name for s in recorder.spans()] == ["s3", "s4"]
        assert recorder.spans_recorded == 5
        assert recorder.spans_dropped == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_to_dicts(self):
        recorder = SpanRecorder()
        recorder.record("source.emit", recorder.origin + 1.0, 0.5, {"q": 1})
        (d,) = recorder.to_dicts()
        assert d == {
            "name": "source.emit",
            "start_s": pytest.approx(1.0),
            "duration_s": 0.5,
            "attrs": {"q": 1},
        }

    def test_chrome_trace_export(self, tmp_path):
        recorder = SpanRecorder()
        recorder.record("sim.quantum", recorder.origin, 0.002, {"quantum": 0})
        path = tmp_path / "trace.json"
        recorder.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "sim.quantum"
        assert event["dur"] == pytest.approx(2000.0)  # microseconds
        assert event["args"] == {"quantum": 0}

    def test_clear(self):
        recorder = SpanRecorder()
        recorder.record("a", 0.0, 0.0, {})
        recorder.clear()
        assert recorder.spans() == []
