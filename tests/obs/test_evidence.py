"""Tests for evidence bundles: rings, round-trip, pipeline capture, and
the verdicts-identical-with-capture-on/off invariant."""

import json

import pytest

from repro.analysis import figures as fig
from repro.errors import EXIT_CORRUPT_ARCHIVE, exit_code_for
from repro.obs.evidence import (
    EVIDENCE_FORMAT,
    EvidenceBundle,
    EvidenceError,
    evidence_document,
    load_evidence,
    write_evidence,
)
from repro.obs.metrics import MetricsRegistry
from repro.util.bitstream import Message


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestBundleRings:
    def test_trajectory_ring_drops_oldest(self, registry):
        bundle = EvidenceBundle("u", "burst", capacity=2, metrics=registry)
        for quantum in range(4):
            bundle.record_lr(quantum, quantum / 10)
        assert bundle.to_dict()["lr_trajectory"] == [[2, 0.2], [3, 0.3]]
        assert bundle.dropped == {"lr_trajectory": 2}

    def test_drop_metric_counts(self, registry):
        bundle = EvidenceBundle("u", "burst", capacity=1, metrics=registry)
        bundle.record_lr(0, 0.1)
        bundle.record_lr(1, 0.2)
        assert (
            registry.counter(
                "cchunter_evidence_dropped_total", labels={"unit": "u"}
            ).value
            == 1.0
        )

    def test_health_and_verdict_dedup_consecutive(self, registry):
        bundle = EvidenceBundle("u", "burst", metrics=registry)
        bundle.record_health(0, "ok")
        bundle.record_health(1, "ok")
        bundle.record_health(2, "degraded")
        bundle.record_verdict(0, False)
        bundle.record_verdict(1, False)
        bundle.record_verdict(2, True)
        d = bundle.to_dict()
        assert d["health_transitions"] == [[0, "ok"], [2, "degraded"]]
        assert d["verdict_timeline"] == [[0, False], [2, True]]

    def test_invalid_capacity_rejected(self, registry):
        with pytest.raises(EvidenceError):
            EvidenceBundle("u", "burst", capacity=0, metrics=registry)


class TestRoundTrip:
    def _populated(self, registry):
        bundle = EvidenceBundle("membus", "burst", metrics=registry)
        bundle.record_lr(0, 0.2)
        bundle.record_lr(1, 0.8)
        bundle.record_fault(1, "drop:membus")
        bundle.record_health(1, "degraded")
        bundle.record_verdict(1, True)
        return bundle

    def test_from_dict_to_dict_identity(self, registry):
        bundle = self._populated(registry)
        d = bundle.to_dict()
        clone = EvidenceBundle.from_dict(
            json.loads(json.dumps(d)), metrics=registry
        )
        assert clone.to_dict() == d

    def test_missing_field_raises(self, registry):
        with pytest.raises(EvidenceError):
            EvidenceBundle.from_dict({"unit": "u"}, metrics=registry)

    def test_document_write_load(self, registry, tmp_path):
        bundle = self._populated(registry)
        path = tmp_path / "ev.json"
        doc = write_evidence(
            str(path), {"membus": bundle}, meta={"seed": 1}
        )
        loaded = load_evidence(str(path))
        assert loaded == doc
        assert loaded["format"] == EVIDENCE_FORMAT
        assert loaded["meta"] == {"seed": 1}
        assert loaded["units"]["membus"] == bundle.to_dict()

    def test_document_accepts_serialized_bundles(self, registry):
        bundle = self._populated(registry)
        doc = evidence_document({"membus": bundle.to_dict()})
        assert doc["units"]["membus"] == bundle.to_dict()

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other/v1", "units": {}}')
        with pytest.raises(EvidenceError):
            load_evidence(str(path))

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(EvidenceError):
            load_evidence(str(path))

    def test_evidence_error_maps_to_corrupt_exit_code(self):
        assert exit_code_for(EvidenceError("x")) == EXIT_CORRUPT_ARCHIVE


class TestPipelineCapture:
    def _run(self, channel, capture, **kwargs):
        return fig.run_channel_session(
            channel,
            Message.random(8, 3),
            bandwidth_bps=1000.0,
            seed=3,
            noise=False,
            capture_evidence=capture,
            **kwargs,
        )

    def test_burst_capture_populates_bundle(self):
        run = self._run("membus", True)
        run.hunter.report()
        (bundle,) = run.hunter.evidence().values()
        d = bundle.to_dict()
        assert d["method"] == "burst"
        assert d["lr_trajectory"], "LR trajectory must be recorded"
        assert d["cluster_snapshot"] is not None
        # The LR starts above threshold here, so the rise crossing at
        # quantum 0 freezes a histogram snapshot.
        assert d["histogram_snapshots"]
        assert d["histogram_snapshots"][0]["reason"].startswith(
            "lr-threshold-"
        )

    def test_oscillation_capture_populates_bundle(self):
        run = self._run("cache", True)
        run.hunter.report()
        (bundle,) = run.hunter.evidence().values()
        d = bundle.to_dict()
        assert d["method"] == "oscillation"
        assert d["peak_trajectory"]
        assert d["acf_windows"]
        assert d["acf_snapshot"] is not None
        assert len(d["acf_snapshot"]["acf"]) > 1

    def test_capture_off_keeps_bundles_empty(self):
        run = self._run("membus", False)
        assert run.hunter.evidence() == {}

    @pytest.mark.parametrize("channel", ["membus", "cache"])
    def test_verdicts_bit_identical_on_off(self, channel):
        rep_off = self._run(channel, False).hunter.report()
        rep_on = self._run(channel, True).hunter.report()
        on_dict = rep_on.to_dict()
        for verdict in on_dict["verdicts"]:
            verdict.pop("evidence", None)
        assert on_dict == rep_off.to_dict()

    def test_captured_bundle_round_trips_through_json(self):
        run = self._run("membus", True)
        run.hunter.report()
        (bundle,) = run.hunter.evidence().values()
        d = bundle.to_dict()
        clone = EvidenceBundle.from_dict(
            json.loads(json.dumps(d)), metrics=MetricsRegistry()
        )
        assert clone.to_dict() == d


class TestVerdictAttachment:
    def test_session_attaches_evidence_to_verdicts(self):
        run = fig.run_channel_session(
            "membus",
            Message.random(8, 3),
            bandwidth_bps=1000.0,
            seed=3,
            noise=False,
            capture_evidence=True,
        )
        report = run.hunter.session.current_verdicts(with_evidence=True)
        (verdict,) = report.verdicts
        (bundle,) = run.hunter.evidence().values()
        assert verdict.evidence == bundle.to_dict()
        assert "evidence" in verdict.to_dict()

    def test_plain_verdict_dict_has_no_evidence_key(self):
        run = fig.run_channel_session(
            "membus",
            Message.random(8, 3),
            bandwidth_bps=1000.0,
            seed=3,
            noise=False,
        )
        (verdict,) = run.hunter.report().verdicts
        assert "evidence" not in verdict.to_dict()
