"""Regression tests: worker metrics merge in canonical trial order.

Gauge merges are last-writer-wins, so merging worker snapshots in chunk
*completion* order made the parent registry's gauges depend on OS
scheduling whenever jobs > 1. The runner now defers all merges and
replays them sorted by first trial index; these tests skew trial
runtimes so completion order reliably disagrees with canonical order.

Trial functions live at module level so pool workers can unpickle them.
"""

import time

from repro.exec import TrialRunner, TrialSpec
from repro.obs.metrics import MetricsRegistry, get_default
from repro.obs.timeseries import MetricsSampler


def gauged(index):
    """Sets a gauge to its trial index; trial 0 finishes last."""
    if index == 0:
        time.sleep(0.4)
    get_default().counter("test_merge_trials_total").inc()
    get_default().gauge("test_merge_last_index").set(index)
    return index


N_TRIALS = 3


class TestCanonicalMergeOrder:
    def _run(self, jobs, sampler=None):
        registry = MetricsRegistry()
        runner = TrialRunner(
            jobs=jobs, chunk_size=1, metrics=registry, sampler=sampler
        )
        results = runner.run_trials(
            TrialSpec(fn=gauged),
            params=[{"index": i} for i in range(N_TRIALS)],
        )
        assert results == list(range(N_TRIALS))
        return registry

    def test_gauge_is_canonical_last_writer_serial(self):
        registry = self._run(jobs=1)
        assert registry.gauge("test_merge_last_index").value == N_TRIALS - 1

    def test_gauge_is_canonical_last_writer_parallel(self):
        # chunk_size=1 + the sleep in trial 0 force chunk 0 to finish
        # last; with completion-order merging the gauge would end at 0.
        registry = self._run(jobs=2)
        assert registry.gauge("test_merge_last_index").value == N_TRIALS - 1

    def test_counters_unaffected_by_ordering(self):
        registry = self._run(jobs=2)
        assert (
            registry.counter("test_merge_trials_total").value == N_TRIALS
        )

    def test_sampler_records_one_labeled_sample_per_chunk(self):
        registry = MetricsRegistry()
        sampler = MetricsSampler(registry=registry, source="exec")
        runner = TrialRunner(
            jobs=2, chunk_size=1, metrics=registry, sampler=sampler
        )
        runner.run_trials(
            TrialSpec(fn=gauged),
            params=[{"index": i} for i in range(N_TRIALS)],
        )
        records = sampler.records()
        assert [r["label"] for r in records] == [
            f"chunk:{i}" for i in range(N_TRIALS)
        ]
        # The merge-progress series shows the gauge advancing in
        # canonical order regardless of completion order.
        assert [
            r["values"]["test_merge_last_index"] for r in records
        ] == [0.0, 1.0, 2.0]
