"""TelemetryServer: routing, robustness, and the fetch helper.

The admin plane's contract (docs/OBSERVABILITY.md, "Live telemetry"):
exact routes win over prefix routes, longest prefix wins, malformed
input gets 400/405/404 — never a crash or a wedged loop — and a buggy
handler surfaces as 500 without taking the server down.
"""

import asyncio
import json

import pytest

from repro.faults.wire import GARBAGE_HTTP_REQUESTS
from repro.obs.telemetry import (
    TelemetryServer,
    fetch,
    json_response,
    text_response,
)


def run(coro):
    failures = []

    async def wrapper():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(
            lambda _loop, ctx: failures.append(ctx.get("message", str(ctx)))
        )
        return await coro

    result = asyncio.run(wrapper())
    assert not failures, f"unhandled event-loop errors: {failures}"
    return result


def make_server():
    server = TelemetryServer()
    server.route("/ping", lambda: text_response("pong\n"))
    server.route("/doc", lambda: json_response({"ok": True}))
    server.route("/boom", lambda: 1 / 0)
    server.route_prefix("/items/", lambda name: json_response({"item": name}))
    server.route_prefix(
        "/items/special/", lambda name: json_response({"special": name})
    )
    return server


async def served(scenario):
    server = make_server()
    host, port = await server.start()
    try:
        return await scenario(server, host, port), server
    finally:
        await server.stop()


class TestRouting:
    def test_exact_route(self):
        async def scenario(server, host, port):
            return await fetch(host, port, "/ping")

        (status, body), server = run(served(scenario))
        assert status == 200 and body == "pong\n"
        assert server.requests_served == 1

    def test_json_route_sorted_keys(self):
        async def scenario(server, host, port):
            return await fetch(host, port, "/doc")

        (status, body), _server = run(served(scenario))
        assert status == 200
        assert json.loads(body) == {"ok": True}
        assert body.endswith("\n")

    def test_prefix_route_gets_suffix(self):
        async def scenario(server, host, port):
            return await fetch(host, port, "/items/alpha")

        (status, body), _server = run(served(scenario))
        assert status == 200 and json.loads(body) == {"item": "alpha"}

    def test_longest_prefix_wins(self):
        async def scenario(server, host, port):
            return await fetch(host, port, "/items/special/beta")

        (status, body), _server = run(served(scenario))
        assert json.loads(body) == {"special": "beta"}

    def test_query_string_stripped(self):
        async def scenario(server, host, port):
            return await fetch(host, port, "/ping?verbose=1")

        (status, body), _server = run(served(scenario))
        assert status == 200 and body == "pong\n"

    def test_unknown_path_404(self):
        async def scenario(server, host, port):
            return await fetch(host, port, "/nope")

        (status, body), _server = run(served(scenario))
        assert status == 404 and "no such path" in json.loads(body)["error"]

    def test_handler_exception_500_and_server_survives(self):
        async def scenario(server, host, port):
            first = await fetch(host, port, "/boom")
            second = await fetch(host, port, "/ping")
            return first, second

        ((boom, _), (ping, body)), _server = run(served(scenario))
        assert boom == 500
        assert ping == 200 and body == "pong\n"

    def test_route_paths_validated(self):
        server = TelemetryServer()
        with pytest.raises(ValueError):
            server.route("metrics", lambda: text_response(""))
        with pytest.raises(ValueError):
            server.route_prefix("tenants/", lambda name: text_response(""))


class TestRobustness:
    def test_non_get_405(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"POST /ping HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        raw, _server = run(served(scenario))
        assert b"405" in raw.split(b"\r\n", 1)[0]

    def test_garbage_corpus_never_crashes(self):
        """Every canned hostile request gets an error or a hangup."""

        async def scenario(server, host, port):
            for garbage in GARBAGE_HTTP_REQUESTS:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(garbage)
                if garbage == b"":
                    writer.write_eof()
                await writer.drain()
                await reader.read()
                writer.close()
                await writer.wait_closed()
            # The plane is still alive and routing after the barrage.
            return await fetch(host, port, "/ping")

        (status, body), _server = run(served(scenario))
        assert status == 200 and body == "pong\n"

    def test_clean_close_before_request_is_silent(self):
        async def scenario(server, host, port):
            _reader, writer = await asyncio.open_connection(host, port)
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            return await fetch(host, port, "/ping")

        (status, _body), server = run(served(scenario))
        assert status == 200
        # The empty connection was not counted as a served request.
        assert server.requests_served == 1

    def test_overlong_request_line_400(self):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /" + b"a" * 8192 + b" HTTP/1.1\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        raw, _server = run(served(scenario))
        status_line = raw.split(b"\r\n", 1)[0]
        assert b"400" in status_line or raw == b""


class TestLifecycle:
    def test_double_start_rejected(self):
        async def scenario():
            server = make_server()
            await server.start()
            try:
                with pytest.raises(RuntimeError):
                    await server.start()
            finally:
                await server.stop()

        run(scenario())

    def test_stop_idempotent_and_port_after_start(self):
        async def scenario():
            server = make_server()
            with pytest.raises(RuntimeError):
                _ = server.port
            host, port = await server.start()
            assert server.port == port and host == "127.0.0.1"
            await server.stop()
            await server.stop()  # idempotent
            with pytest.raises((ConnectionError, OSError)):
                await fetch(host, port, "/ping")

        run(scenario())
