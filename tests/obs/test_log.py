"""Tests for the structured repro.* logging layer."""

import io
import json
import logging

import pytest

from repro.obs.log import ROOT_LOGGER_NAME, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    """Leave the repro logger tree as we found it."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    saved = (list(root.handlers), root.level, root.propagate)
    yield
    root.handlers[:] = saved[0]
    root.setLevel(saved[1])
    root.propagate = saved[2]


class TestGetLogger:
    def test_namespaces_under_repro(self):
        assert get_logger("pipeline.session").name == "repro.pipeline.session"

    def test_already_namespaced_names_pass_through(self):
        assert get_logger("repro.sim.machine").name == "repro.sim.machine"
        assert get_logger("repro").name == "repro"


class TestConfigureLogging:
    def test_text_mode_emits_formatted_lines(self):
        stream = io.StringIO()
        configure_logging(level="INFO", stream=stream)
        get_logger("sim.machine").info("ran %d quanta", 4)
        line = stream.getvalue()
        assert "repro.sim.machine" in line
        assert "ran 4 quanta" in line
        assert "INFO" in line

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging(level="WARNING", stream=stream)
        get_logger("traces").info("suppressed")
        assert stream.getvalue() == ""

    def test_json_mode_emits_parseable_records(self):
        stream = io.StringIO()
        configure_logging(level="DEBUG", json_mode=True, stream=stream)
        get_logger("pipeline.session").debug(
            "first detection", extra={"unit": "membus", "quantum": 7}
        )
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "DEBUG"
        assert payload["logger"] == "repro.pipeline.session"
        assert payload["message"] == "first detection"
        assert payload["unit"] == "membus"
        assert payload["quantum"] == 7
        assert isinstance(payload["ts"], float)

    def test_reconfigure_replaces_own_handler_only(self):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        foreign = logging.NullHandler()
        root.addHandler(foreign)
        configure_logging(level="INFO", stream=io.StringIO())
        configure_logging(level="DEBUG", stream=io.StringIO())
        tagged = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        # one tagged handler total, the foreign one untouched
        assert len(tagged) == 1
        assert foreign in root.handlers

    def test_does_not_touch_global_root(self):
        configure_logging(level="DEBUG", stream=io.StringIO())
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert root.propagate is False
        assert not any(
            getattr(h, "_repro_obs_handler", False)
            for h in logging.getLogger().handlers
        )

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="LOUD")
