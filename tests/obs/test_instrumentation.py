"""End-to-end instrumentation tests: run the stack, read the registry.

These pin the acceptance contract of docs/OBSERVABILITY.md: a detection
run against an isolated registry must populate the simulator throughput
metrics, the per-analyzer push-latency histograms, the per-unit
first-detection gauges, and the accumulator clamp/saturation counters.
"""

import numpy as np

from repro.config import MachineConfig
from repro.core.detector import AuditUnit, CCHunter
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.pipeline import BurstAnalyzer, DetectionSession, QuantumObservation
from repro.sim.machine import Machine
from repro.sim.process import BusLockBurst, Process


def _run_audited_session(metrics, quanta=2):
    config = MachineConfig(os_quantum_seconds=0.002)
    machine = Machine(config=config, seed=99, metrics=metrics)
    hunter = CCHunter(
        machine, track_detection_latency=True, metrics=metrics
    )
    hunter.audit(AuditUnit.MEMORY_BUS, dt=1000)

    def trojan(proc):
        yield BusLockBurst(count=200, period=100)

    machine.spawn(Process("t", body=trojan), ctx=0)
    machine.run_quanta(quanta)
    return machine, hunter


class TestSimulatorMetrics:
    def test_quanta_events_and_throughput(self):
        reg = MetricsRegistry()
        _run_audited_session(reg, quanta=3)
        snap = reg.to_dict()["metrics"]
        assert snap["cchunter_sim_quanta_total"]["series"][0]["value"] == 3
        assert snap["cchunter_sim_events_total"]["series"][0]["value"] > 0
        assert snap["cchunter_sim_quanta_per_second"]["series"][0]["value"] > 0
        assert snap["cchunter_sim_time_ratio"]["series"][0]["value"] > 0
        quantum_wall = snap["cchunter_sim_quantum_wall_seconds"]["series"][0]
        assert quantum_wall["count"] == 3
        assert snap["cchunter_sched_placements_total"]["series"][0]["value"] > 0


class TestPipelineMetrics:
    def test_session_and_analyzer_metrics(self):
        reg = MetricsRegistry()
        _run_audited_session(reg, quanta=2)
        snap = reg.to_dict()["metrics"]
        assert snap["cchunter_session_quanta_total"]["series"][0]["value"] == 2
        push = snap["cchunter_analyzer_push_seconds"]["series"][0]
        assert push["labels"] == {"unit": "membus"}
        assert push["count"] == 2
        assert snap["cchunter_source_observations_total"]["series"][0][
            "value"
        ] == 2
        channel = snap["cchunter_source_channel_events_total"]["series"][0]
        assert channel["labels"] == {"channel": "membus"}
        assert channel["value"] > 0
        windows = snap["cchunter_analyzer_windows_total"]["series"][0]
        assert windows["value"] > 0  # one per Δt window, many per quantum

    def test_first_detection_gauge(self):
        reg = MetricsRegistry()
        _machine, hunter = _run_audited_session(reg, quanta=2)
        first = hunter.first_detection_quantum(AuditUnit.MEMORY_BUS)
        gauge = reg.gauge(
            "cchunter_first_detection_quantum", labels={"unit": "membus"}
        )
        assert gauge.value == (-1 if first is None else first)

    def test_clamp_and_saturation_counters_exist(self):
        reg = MetricsRegistry()
        _run_audited_session(reg, quanta=2)
        names = set(reg.to_dict()["metrics"])
        assert "cchunter_analyzer_clamp_events_total" in names
        assert "cchunter_analyzer_entry_saturation_total" in names

    def test_saturation_counter_fires_on_clamped_counts(self):
        """Drive a burst analyzer past the accumulator clamp directly."""
        from repro.core.density import StreamingDensityHistogram

        reg = MetricsRegistry()
        session = DetectionSession(metrics=reg)
        accumulator = StreamingDensityHistogram(
            dt=100, count_clamp=65535, entry_max=65535
        )
        session.add_analyzer(
            BurstAnalyzer(
                unit="membus", dt=100, accumulator=accumulator, metrics=reg
            )
        )
        huge = np.full(200, 10**9, dtype=np.int64)
        session.push_quantum(
            QuantumObservation(
                quantum=0, t0=0, t1=100, counts={"membus": huge},
                conflicts=None,
            )
        )
        clamps = reg.counter(
            "cchunter_analyzer_clamp_events_total", labels={"unit": "membus"}
        )
        assert clamps.value > 0


class TestNullRegistryPath:
    def test_run_with_instrumentation_off(self):
        """NULL_REGISTRY runs the whole stack without recording anything."""
        _machine, hunter = _run_audited_session(NULL_REGISTRY, quanta=2)
        report = hunter.report()
        assert report.verdict_for("membus").quanta_analyzed == 2
        assert NULL_REGISTRY.to_dict()["metrics"] == {}


class TestCacheAnalyzerMetrics:
    def test_oscillation_train_and_window_counters(self, small_machine):
        reg = MetricsRegistry()
        hunter = CCHunter(
            small_machine, min_train_events=64, max_lag=400, metrics=reg
        )
        hunter.audit(AuditUnit.CACHE)
        from tests.core.test_detector import TestCacheFlow

        TestCacheFlow()._pingpong(small_machine)
        small_machine.run_quanta(1)
        hunter.session.close()
        snap = reg.to_dict()["metrics"]
        trains = snap["cchunter_analyzer_train_events_total"]["series"][0]
        assert trains["labels"] == {"unit": "cache"}
        assert trains["value"] > 0
        windows = snap["cchunter_analyzer_windows_total"]["series"][0]
        assert windows["labels"] == {"unit": "cache"}
        assert windows["value"] >= 1
        assert snap["cchunter_analyzer_last_train_length"]["series"][0][
            "value"
        ] > 0
