"""Tests for the metrics time-series sampler and JSONL series helpers."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TIMESERIES_FORMAT,
    MetricsSampler,
    TimeseriesError,
    flatten_snapshot,
    load_jsonl,
    merge_records,
    series_keys,
    series_values,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestFlatten:
    def test_counter_gauge_series_keys(self, registry):
        registry.counter("a_total", "help").inc(3)
        registry.gauge("g", "help", labels={"unit": "membus"}).set(2.5)
        flat = flatten_snapshot(registry.to_dict())
        assert flat["a_total"] == 3.0
        assert flat['g{unit="membus"}'] == 2.5

    def test_histogram_flattens_to_sum_and_count(self, registry):
        h = registry.histogram("lat_seconds", "help", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        flat = flatten_snapshot(registry.to_dict())
        assert flat["lat_seconds_count"] == 2.0
        assert flat["lat_seconds_sum"] == pytest.approx(0.55)

    def test_label_keys_sorted_deterministically(self, registry):
        registry.counter("c", "h", labels={"b": "2", "a": "1"}).inc()
        (key,) = flatten_snapshot(registry.to_dict())
        assert key == 'c{a="1",b="2"}'


class TestMetricsSampler:
    def test_every_quanta_cadence(self, registry):
        gauge = registry.gauge("v", "h")
        sampler = MetricsSampler(registry=registry, every_quanta=2)
        for quantum in range(6):
            gauge.set(quantum)
            sampler.maybe_sample(quantum=quantum)
        quanta = [r["quantum"] for r in sampler.records()]
        assert quanta == [0, 2, 4]
        assert [r["values"]["v"] for r in sampler.records()] == [0, 2, 4]

    def test_wall_clock_cadence(self, registry):
        clock = FakeClock()
        sampler = MetricsSampler(
            registry=registry, every_seconds=1.0, clock=clock
        )
        for step in range(5):
            clock.t = step * 0.6  # 0.0 0.6 1.2 1.8 2.4
            sampler.maybe_sample()
        assert [r["t_s"] for r in sampler.records()] == [0.0, 1.2, 2.4]

    def test_ring_retention_counts_drops(self, registry):
        sampler = MetricsSampler(registry=registry, capacity=3)
        for i in range(5):
            sampler.sample(quantum=i)
        assert len(sampler) == 3
        assert [r["quantum"] for r in sampler.records()] == [2, 3, 4]
        assert sampler.samples_taken == 5
        assert sampler.samples_dropped == 2

    def test_label_and_seq_monotonic(self, registry):
        sampler = MetricsSampler(registry=registry)
        sampler.sample(quantum=0)
        sampler.sample(label="close")
        first, second = sampler.records()
        assert "label" not in first
        assert second["label"] == "close"
        assert second["seq"] == first["seq"] + 1

    def test_self_metrics(self, registry):
        sampler = MetricsSampler(registry=registry, capacity=1, source="t")
        sampler.sample()
        sampler.sample()
        flat = flatten_snapshot(registry.to_dict())
        assert flat['cchunter_sampler_samples_total{source="t"}'] == 2.0
        assert flat['cchunter_sampler_dropped_total{source="t"}'] == 1.0

    def test_invalid_capacity_rejected(self, registry):
        with pytest.raises(TimeseriesError):
            MetricsSampler(registry=registry, capacity=0)


class TestJsonlRoundTrip:
    def test_write_and_load(self, registry, tmp_path):
        registry.counter("c_total", "h").inc()
        sampler = MetricsSampler(registry=registry, source="main")
        sampler.sample(quantum=0)
        sampler.sample(quantum=1)
        path = tmp_path / "ts.jsonl"
        sampler.write_jsonl(str(path))
        header, records = load_jsonl(str(path))
        assert header["format"] == TIMESERIES_FORMAT
        assert header["source"] == "main"
        assert records == sampler.records()

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "nope"}) + "\n")
        with pytest.raises(TimeseriesError):
            load_jsonl(str(path))

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TimeseriesError):
            load_jsonl(str(path))


class TestSeriesHelpers:
    def _sampled(self, registry):
        gauge = registry.gauge("v", "h")
        sampler = MetricsSampler(registry=registry)
        for quantum in range(3):
            gauge.set(quantum * 10)
            sampler.sample(quantum=quantum)
        return sampler.records()

    def test_series_values_by_quantum(self, registry):
        records = self._sampled(registry)
        assert series_values(records, "v") == [(0, 0.0), (1, 10.0), (2, 20.0)]

    def test_series_keys_union(self, registry):
        records = self._sampled(registry)
        registry.counter("late_total", "h").inc()
        sampler = MetricsSampler(registry=registry)
        sampler.sample(quantum=3)
        keys = series_keys(records + sampler.records())
        assert "v" in keys and "late_total" in keys

    def test_merge_records_orders_by_quantum(self, registry):
        a = MetricsSampler(registry=registry, source="a")
        b = MetricsSampler(registry=registry, source="b")
        a.sample(quantum=0)
        b.sample(quantum=1)
        a.sample(quantum=2)
        merged = merge_records([b.records(), a.records()])
        assert [r["quantum"] for r in merged] == [0, 1, 2]
        assert [r["source"] for r in merged] == ["a", "b", "a"]
