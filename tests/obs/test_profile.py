"""Tests for the per-stage latency attribution profiler."""

import json

import pytest

from repro.obs.profile import (
    PROFILE_FORMAT,
    ProfileError,
    StageProfiler,
    disable_profiling,
    enable_profiling,
    get_profiler,
    load_profile,
    merge_profiles,
    profiling_enabled,
    render_collapsed,
    render_top,
    to_speedscope,
)
from repro.obs.tracing import (
    disable_tracing,
    enable_tracing,
    trace_span,
)


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with tracing and profiling disabled."""
    disable_tracing()
    disable_profiling()
    yield
    disable_tracing()
    disable_profiling()


def _drive(profiler, spans):
    """Feed (name, attrs, t0, t1) span intervals straight into a profiler."""
    for name, attrs, t0, t1 in spans:
        profiler.begin(name, attrs, t0)
        profiler.end(t1)


class TestStageAccounting:
    def test_nested_self_child_split(self):
        prof = StageProfiler(cpu_clock=lambda: 0.0)
        prof.begin("sim.quantum", {"quantum": 0}, 0.0)
        prof.begin("source.emit", {"quantum": 0}, 1.0)
        prof.end(3.0)  # child: 2s
        prof.end(10.0)  # parent: 10s total
        stats = prof.stats()
        parent = stats[("sim.quantum",)]
        child = stats[("sim.quantum", "source.emit")]
        assert parent.wall == pytest.approx(10.0)
        assert parent.self_wall == pytest.approx(8.0)
        assert child.wall == pytest.approx(2.0)
        assert child.self_wall == pytest.approx(2.0)

    def test_unit_attr_becomes_per_unit_stage_label(self):
        prof = StageProfiler()
        _drive(prof, [
            ("analyzer.push", {"unit": "membus"}, 0.0, 1.0),
            ("analyzer.push", {"unit": "cache"}, 1.0, 2.0),
        ])
        labels = {path[-1] for path in prof.stats()}
        assert labels == {"analyzer.push[membus]", "analyzer.push[cache]"}

    def test_calls_accumulate_per_path(self):
        prof = StageProfiler()
        _drive(prof, [("a", {}, float(i), float(i) + 0.5) for i in range(4)])
        (stats,) = prof.stats().values()
        assert stats.calls == 4
        assert stats.wall == pytest.approx(2.0)

    def test_unbalanced_end_is_dropped_not_fatal(self):
        prof = StageProfiler()
        prof.end(1.0)  # nothing open
        assert prof.stats() == {}
        assert prof.spans_profiled == 0

    def test_quantum_inherited_from_parent_frame(self):
        prof = StageProfiler()
        prof.begin("sim.quantum", {"quantum": 7}, 0.0)
        prof.begin("engine.step", {}, 0.1)  # no quantum attr of its own
        prof.end(0.2)
        prof.end(1.0)
        rows = prof.to_dict()["quanta"]["rows"]
        (row,) = rows
        assert row["quantum"] == 7
        assert set(row["stages"]) == {"sim.quantum", "engine.step"}


class TestPerQuantumRing:
    def test_rows_bounded_oldest_evicted(self):
        prof = StageProfiler(max_quanta=3)
        _drive(prof, [
            ("sim.quantum", {"quantum": q}, float(q), float(q) + 0.5)
            for q in range(5)
        ])
        doc = prof.to_dict()
        assert [r["quantum"] for r in doc["quanta"]["rows"]] == [2, 3, 4]
        assert doc["quanta"]["dropped"] == 2

    def test_invalid_max_quanta_rejected(self):
        with pytest.raises(ProfileError):
            StageProfiler(max_quanta=0)

    def test_row_accumulates_self_time_per_label(self):
        prof = StageProfiler()
        _drive(prof, [
            ("a", {"quantum": 0}, 0.0, 1.0),
            ("a", {"quantum": 0}, 2.0, 2.5),
        ])
        (row,) = prof.to_dict()["quanta"]["rows"]
        assert row["stages"]["a"]["self_wall_s"] == pytest.approx(1.5)


class TestDocumentAndMerge:
    def _sample_doc(self):
        prof = StageProfiler(cpu_clock=lambda: 0.0)
        prof.begin("sim.quantum", {"quantum": 0}, 0.0)
        prof.begin("analyzer.push", {"unit": "membus", "quantum": 0}, 1.0)
        prof.end(2.0)
        prof.end(4.0)
        return prof.to_dict()

    def test_to_dict_format_and_fields(self):
        doc = self._sample_doc()
        assert doc["format"] == PROFILE_FORMAT
        assert doc["spans"] == 2
        paths = [tuple(e["path"]) for e in doc["stages"]]
        assert ("sim.quantum",) in paths
        assert ("sim.quantum", "analyzer.push[membus]") in paths
        for entry in doc["stages"]:
            assert entry["self_wall_s"] <= entry["wall_s"] + 1e-12
            assert entry["depth"] == len(entry["path"]) - 1

    def test_merge_dict_doubles_everything(self):
        doc = self._sample_doc()
        merged = StageProfiler()
        merged.merge_dict(doc)
        merged.merge_dict(doc)
        out = {tuple(e["path"]): e for e in merged.to_dict()["stages"]}
        base = {tuple(e["path"]): e for e in doc["stages"]}
        for path, entry in base.items():
            assert out[path]["calls"] == 2 * entry["calls"]
            assert out[path]["wall_s"] == pytest.approx(2 * entry["wall_s"])
            assert out[path]["self_wall_s"] == pytest.approx(
                2 * entry["self_wall_s"]
            )

    def test_merge_profiles_sums_wall(self):
        doc = self._sample_doc()
        out = merge_profiles([doc, doc])
        assert out["spans"] == 4
        assert out["wall_s"] == pytest.approx(2 * doc["wall_s"])

    def test_merge_rejects_non_profile(self):
        with pytest.raises(ProfileError):
            StageProfiler().merge_dict({"format": "something/else"})

    def test_write_and_load_round_trip(self, tmp_path):
        prof = StageProfiler()
        _drive(prof, [("a", {}, 0.0, 1.0)])
        path = tmp_path / "profile.json"
        written = prof.write_json(str(path))
        loaded = load_profile(str(path))
        assert loaded == json.loads(json.dumps(written))

    def test_load_rejects_non_profile_file(self, tmp_path):
        path = tmp_path / "not_profile.json"
        path.write_text('{"format": "repro.obs.metrics/v1"}')
        with pytest.raises(ProfileError):
            load_profile(str(path))


class TestRenderers:
    def _doc(self):
        prof = StageProfiler(cpu_clock=lambda: 0.0)
        prof.begin("sim.quantum", {"quantum": 0}, 0.0)
        prof.begin("source.emit", {}, 1.0)
        prof.end(2.0)
        prof.end(3.0)
        return prof.to_dict()

    def test_collapsed_stacks_weight_is_self_micros(self):
        lines = render_collapsed(self._doc()).strip().splitlines()
        weights = dict(line.rsplit(" ", 1) for line in lines)
        assert weights["sim.quantum"] == str(2_000_000)
        assert weights["sim.quantum;source.emit"] == str(1_000_000)

    def test_speedscope_document_shape(self):
        ss = to_speedscope(self._doc(), name="test")
        (profile,) = ss["profiles"]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
        frame_names = [f["name"] for f in ss["shared"]["frames"]]
        for stack in profile["samples"]:
            assert all(0 <= idx < len(frame_names) for idx in stack)

    def test_render_top_mentions_stages_and_coverage(self):
        text = render_top(self._doc(), n=5)
        assert "sim.quantum" in text
        assert "source.emit" in text
        assert "attributed to stages" in text

    def test_renderers_reject_non_profile(self):
        for fn in (render_collapsed, to_speedscope, render_top):
            with pytest.raises(ProfileError):
                fn({"format": "nope"})


class TestGlobalHook:
    def test_enable_feeds_trace_spans(self):
        prof = enable_profiling()
        assert profiling_enabled()
        assert get_profiler() is prof
        with trace_span("sim.quantum", quantum=1):
            with trace_span("analyzer.push", unit="membus", quantum=1):
                pass
        disable_profiling()
        assert not profiling_enabled()
        paths = set(prof.stats())
        assert ("sim.quantum",) in paths
        assert ("sim.quantum", "analyzer.push[membus]") in paths
        # After disabling, spans no longer reach the profiler.
        with trace_span("sim.quantum", quantum=2):
            pass
        assert prof.spans_profiled == 2

    def test_recorder_and_profiler_share_one_interval(self):
        recorder = enable_tracing()
        prof = enable_profiling()
        with trace_span("session.verdicts", quantum=0):
            pass
        (span,) = recorder.spans()
        (stats,) = prof.stats().values()
        # Same clock reads on both sides: identical duration, not two
        # nearly-equal measurements.
        assert stats.wall == pytest.approx(span.duration, abs=0.0)

    def test_span_body_exception_still_closes_frame(self):
        prof = enable_profiling()
        with pytest.raises(ValueError):
            with trace_span("sim.quantum", quantum=0):
                raise ValueError("boom")
        assert prof.stats()[("sim.quantum",)].calls == 1
