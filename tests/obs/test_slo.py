"""SloTracker: burn math, multi-window firing, dedup, and emission.

Time is injected via the ``clock`` hook throughout so the window
arithmetic is exact — no sleeps, no flakiness.
"""

import json

import pytest

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.slo import (
    ALERT_FORMAT,
    BurnRateRule,
    SloObjective,
    SloTracker,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


RULE = BurnRateRule(
    "burn", short_window_s=10.0, long_window_s=40.0, threshold=2.0,
    min_samples=4,
)
OBJ = SloObjective("shed", budget=0.05)


def tracker(**kwargs):
    clock = kwargs.pop("clock", FakeClock())
    kwargs.setdefault("objectives", (OBJ,))
    kwargs.setdefault("rules", (RULE,))
    kwargs.setdefault("metrics", NULL_REGISTRY)
    return SloTracker(clock=clock, **kwargs), clock


class TestValidation:
    def test_budget_bounds(self):
        with pytest.raises(ValueError):
            SloObjective("x", budget=0.0)
        with pytest.raises(ValueError):
            SloObjective("x", budget=1.5)

    def test_rule_windows(self):
        with pytest.raises(ValueError):
            BurnRateRule("r", short_window_s=60.0, long_window_s=30.0,
                         threshold=2.0)
        with pytest.raises(ValueError):
            BurnRateRule("r", short_window_s=0.0, long_window_s=30.0,
                         threshold=2.0)
        with pytest.raises(ValueError):
            BurnRateRule("r", short_window_s=10.0, long_window_s=30.0,
                         threshold=0.0)

    def test_unknown_objective_rejected(self):
        slo, _clock = tracker()
        with pytest.raises(ValueError, match="unknown objective"):
            slo.observe("t1", "latency_typo", True)

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(ValueError):
            SloTracker(objectives=(OBJ, OBJ), metrics=NULL_REGISTRY)


class TestBurnMath:
    def test_burn_rate_is_bad_fraction_over_budget(self):
        slo, clock = tracker()
        # 1 bad of 4 = 25% bad on a 5% budget -> burning at 5x.
        for bad in (True, False, False, False):
            slo.observe("t1", "shed", bad)
        assert slo.burn_rate("t1", "shed", 10.0) == pytest.approx(5.0)

    def test_idle_tenant_burns_zero(self):
        slo, _clock = tracker()
        assert slo.burn_rate("ghost", "shed", 10.0) == 0.0
        assert slo.max_burn_rate("ghost") == 0.0

    def test_samples_age_out_of_the_window(self):
        slo, clock = tracker()
        for _ in range(4):
            slo.observe("t1", "shed", True)
        clock.advance(11.0)  # past the short window, inside the long
        assert slo.burn_rate("t1", "shed", 10.0) == 0.0
        assert slo.burn_rate("t1", "shed", 40.0) == pytest.approx(20.0)


class TestFiring:
    def saturate(self, slo, tenant="t1", n=8):
        for _ in range(n):
            slo.observe(tenant, "shed", True)

    def test_fires_when_both_windows_burn(self):
        slo, _clock = tracker()
        self.saturate(slo)
        fired = slo.evaluate("t1")
        assert len(fired) == 1
        alert = fired[0]
        assert alert["format"] == ALERT_FORMAT
        assert alert["rule"] == "burn" and alert["objective"] == "shed"
        assert alert["tenant"] == "t1"
        assert alert["burn_short"] >= alert["threshold"]
        assert slo.firing("t1") == [{"rule": "burn", "objective": "shed"}]

    def test_min_samples_guard(self):
        slo, _clock = tracker()
        self.saturate(slo, n=3)  # all bad, but under min_samples=4
        assert slo.evaluate("t1") == []

    def test_short_window_alone_does_not_fire(self):
        """An acute burst on a long-good history: long window holds it."""
        slo, clock = tracker()
        for _ in range(200):
            slo.observe("t1", "shed", False)
            clock.advance(0.15)  # 30 s of clean history
        for _ in range(10):
            slo.observe("t1", "shed", True)
        assert slo.burn_rate("t1", "shed", 10.0) >= RULE.threshold
        assert slo.burn_rate("t1", "shed", 40.0) < RULE.threshold
        assert slo.evaluate("t1") == []

    def test_edge_triggered_with_rearm(self):
        slo, clock = tracker()
        self.saturate(slo)
        assert len(slo.evaluate("t1")) == 1
        # Still firing: no duplicate alert on re-evaluation.
        assert slo.evaluate("t1") == []
        assert slo.alerts_fired == 1
        # Clears once the window drains past the horizon, then re-trips.
        clock.advance(50.0)
        assert slo.evaluate("t1") == []
        assert slo.firing("t1") == []
        self.saturate(slo)
        assert len(slo.evaluate("t1")) == 1
        assert slo.alerts_fired == 2

    def test_tenants_are_independent(self):
        slo, _clock = tracker()
        self.saturate(slo, tenant="noisy")
        for _ in range(8):
            slo.observe("quiet", "shed", False)
        assert len(slo.evaluate("noisy")) == 1
        assert slo.evaluate("quiet") == []
        assert slo.firing("quiet") == []


class TestEmission:
    def test_alerts_jsonl_appended(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        slo, _clock = tracker(alerts_path=str(path))
        for _ in range(8):
            slo.observe("t1", "shed", True)
        slo.evaluate("t1")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["format"] == ALERT_FORMAT and doc["tenant"] == "t1"
        assert doc["short_window_s"] == RULE.short_window_s

    def test_alerts_counter_labeled(self):
        registry = MetricsRegistry()
        slo, _clock = tracker(metrics=registry)
        for _ in range(8):
            slo.observe("t1", "shed", True)
        slo.evaluate("t1")
        exposition = registry.render_prometheus()
        assert (
            'cchunter_alerts_total{rule="burn",tenant="t1"} 1'
            in exposition
        )

    def test_structured_log_record(self):
        # Capture with a dedicated handler on the slo logger itself:
        # earlier tests may have reconfigured the repro logging tree
        # (propagation off), which would blind caplog's root handler.
        import logging

        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger("repro.obs.slo")
        handler = Capture(level=logging.WARNING)
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.WARNING)
        try:
            slo, _clock = tracker()
            for _ in range(8):
                slo.observe("t1", "shed", True)
            slo.evaluate("t1")
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        [record] = records
        assert record.tenant == "t1" and record.rule == "burn"
        assert record.alert_format == ALERT_FORMAT


class TestObserveHelpers:
    def full(self):
        from repro.obs.slo import DEFAULT_OBJECTIVES

        clock = FakeClock()
        return SloTracker(
            objectives=DEFAULT_OBJECTIVES, rules=(RULE,),
            metrics=NULL_REGISTRY, clock=clock,
        ), clock

    def test_observe_latency_thresholds(self):
        slo, _clock = self.full()
        slo.observe_latency("t1", 0.01)   # good
        slo.observe_latency("t1", 0.50)   # bad (> 250 ms)
        snap = slo.tenant_snapshot("t1")["objectives"]["verdict_latency"]
        assert snap["samples"] == 2
        assert snap["bad_fraction"] == pytest.approx(0.5)

    def test_observe_health(self):
        slo, _clock = self.full()
        slo.observe_health("t1", "ok")
        slo.observe_health("t1", "degraded")
        snap = slo.tenant_snapshot("t1")["objectives"]["health"]
        assert snap["bad_fraction"] == pytest.approx(0.5)

    def test_tenant_snapshot_shape(self):
        slo, _clock = self.full()
        for _ in range(8):
            slo.observe_shed("t1", True)
        slo.evaluate("t1")
        snap = slo.tenant_snapshot("t1")
        assert snap["alerts_total"] == 1
        assert snap["firing"] == [{"rule": "burn", "objective": "shed"}]
        assert snap["max_burn_rate"] == pytest.approx(20.0)
        assert set(snap["objectives"]) == {
            "verdict_latency", "shed", "health",
        }
