"""Property tests for the Prometheus exposition format.

The exposition text is parsed by external scrapers, so the properties
here are the ones a scraper relies on: label values survive escaping no
matter what bytes the pipeline puts in them, and histogram bucket lines
form a cumulative distribution whose ``+Inf`` terminal equals the
observation count.
"""

import math
import re

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry

# Printable-ish text plus the three characters the format must escape.
_label_values = st.text(
    alphabet=st.sampled_from(
        list("abcXYZ019 _-.{}=,") + ["\\", '"', "\n"]
    ),
    min_size=0,
    max_size=24,
)

_LABEL_RE = re.compile(r'\{unit="((?:\\.|[^"\\])*)"\}')


def _unescape(value: str) -> str:
    """Reverse the exposition-format label escaping (\\\\, \\", \\n)."""
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class TestLabelEscaping:
    @given(_label_values)
    def test_label_value_round_trips_through_exposition(self, value):
        reg = MetricsRegistry()
        reg.counter("c_total", labels={"unit": value}).inc()
        text = reg.render_prometheus()
        sample_lines = [
            line for line in text.splitlines()
            if line.startswith("c_total") and not line.startswith("#")
        ]
        # A raw newline in a label value must never split the sample
        # across lines — exactly one sample line for one series.
        assert len(sample_lines) == 1
        (line,) = sample_lines
        match = _LABEL_RE.search(line)
        assert match is not None, line
        assert _unescape(match.group(1)) == value

    @given(_label_values, _label_values)
    def test_distinct_values_stay_distinct_after_escaping(self, v1, v2):
        reg = MetricsRegistry()
        reg.counter("c_total", labels={"unit": v1}).inc(1)
        reg.counter("c_total", labels={"unit": v2}).inc(2)
        text = reg.render_prometheus()
        escaped = set(_LABEL_RE.findall(text))
        recovered = {_unescape(e) for e in escaped}
        assert recovered == {v1, v2}


class TestHistogramCumulative:
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=0, max_size=50,
        ),
        st.lists(
            st.floats(
                min_value=-1e3, max_value=1e3,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=8, unique=True,
        ),
    )
    def test_cumulative_ends_at_inf_with_total_count(self, samples, bounds):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=tuple(sorted(bounds)))
        for x in samples:
            h.observe(x)
        cumulative = h.cumulative()
        # Monotone non-decreasing, terminal bucket holds every sample.
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == h.count == len(samples)
        # The exposition text agrees: le="+Inf" carries the total count,
        # and matches the _count sample exactly.
        snap = reg.to_dict()
        (series,) = snap["metrics"]["h_seconds"]["series"]
        bound_labels = [b for b, _ in series["buckets"]]
        assert bound_labels[-1] == "+Inf"
        assert not any(
            math.isinf(float(b)) for b in bound_labels[:-1]
        )
        text = reg.render_prometheus()
        inf_line = next(
            line for line in text.splitlines()
            if line.startswith('h_seconds_bucket{le="+Inf"}')
        )
        assert inf_line.endswith(f" {len(samples)}")
        assert f"h_seconds_count {len(samples)}" in text
