"""Tests for the unified benchmark harness and regression gate.

The comparison logic is pure, so most gating behavior is tested on
synthetic documents without running a single trial. The end-to-end
tests exercise the real ``repro bench check`` CLI against the committed
baselines — including the acceptance criterion that a perturbed
baseline fails with the documented exit code 8.
"""

import json
import os

import pytest

from repro.bench import (
    BenchSpec,
    MetricSpec,
    append_history,
    bench_result,
    compare_metrics,
    extract_metric,
    get_spec,
    load_history,
    suite_names,
)
from repro.bench.suite import allowed_bound
from repro.cli import main
from repro.errors import EXIT_BENCH_REGRESSION, BenchError

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BENCHMARKS_DIR = os.path.join(REPO_ROOT, "benchmarks")


def _spec(*metrics):
    return BenchSpec(
        name="toy", module="bench_toy", entry="measure",
        baseline="BENCH_toy.json", metrics=tuple(metrics),
    )


class TestCompareMetrics:
    def test_higher_is_better_gates_on_lower_bound(self):
        spec = _spec(MetricSpec("qps", "higher", tolerance=0.5))
        ok_rows = compare_metrics(spec, {"qps": 51.0}, {"qps": 100.0})
        bad_rows = compare_metrics(spec, {"qps": 49.0}, {"qps": 100.0})
        assert ok_rows[0]["ok"] and ok_rows[0]["allowed"] == 50.0
        assert not bad_rows[0]["ok"]

    def test_lower_is_better_with_abs_slack(self):
        spec = _spec(
            MetricSpec("overhead", "lower", tolerance=0.5, abs_slack=0.05)
        )
        # Bound = 0.04 * 1.5 + 0.05 = 0.11.
        (row,) = compare_metrics(
            spec, {"overhead": 0.10}, {"overhead": 0.04}
        )
        assert row["ok"] and row["allowed"] == pytest.approx(0.11)
        (row,) = compare_metrics(
            spec, {"overhead": 0.12}, {"overhead": 0.04}
        )
        assert not row["ok"]

    def test_bool_true_baseline_is_invariant(self):
        spec = _spec(MetricSpec("identical", kind="bool"))
        assert compare_metrics(
            spec, {"identical": True}, {"identical": True}
        )[0]["ok"]
        assert not compare_metrics(
            spec, {"identical": False}, {"identical": True}
        )[0]["ok"]
        # A false baseline gates nothing.
        assert compare_metrics(
            spec, {"identical": False}, {"identical": False}
        )[0]["ok"]

    def test_quick_skips_full_only_metrics(self):
        spec = _spec(
            MetricSpec("qps", "higher", tolerance=0.5),
            MetricSpec("overhead", "lower", quick=False),
        )
        rows = compare_metrics(
            spec, {"qps": 100.0}, {"qps": 100.0}, quick=True
        )
        by_key = {row["metric"]: row for row in rows}
        assert not by_key["qps"]["skipped"]
        # Skipped rows still appear (visible in output) and never fail.
        assert by_key["overhead"]["skipped"] and by_key["overhead"]["ok"]
        full = compare_metrics(
            spec, {"qps": 100.0, "overhead": 0.01},
            {"qps": 100.0, "overhead": 0.01},
        )
        assert not any(row["skipped"] for row in full)

    def test_missing_metric_raises(self):
        spec = _spec(MetricSpec("a.b.c", "higher"))
        with pytest.raises(BenchError, match="a.b.c"):
            compare_metrics(spec, {"a": {"b": {}}}, {"a": {"b": {"c": 1}}})


class TestSuiteHelpers:
    def test_extract_metric_walks_dotted_path(self):
        doc = {"session": {"speedup": 4.8}}
        assert extract_metric(doc, "session.speedup") == 4.8
        with pytest.raises(BenchError):
            extract_metric(doc, "session.missing")

    def test_registered_suite_names(self):
        assert "obs_overhead" in suite_names()
        assert "columnar" in suite_names()
        with pytest.raises(BenchError, match="unknown benchmark"):
            get_spec("nope")

    def test_allowed_bound_rejects_bad_direction(self):
        with pytest.raises(BenchError, match="direction"):
            allowed_bound(MetricSpec("x", "sideways"), 1.0)

    def test_committed_baselines_carry_every_gated_metric(self):
        """The registry and the committed baseline files stay in sync."""
        for name in suite_names():
            spec = get_spec(name)
            with open(os.path.join(REPO_ROOT, spec.baseline)) as handle:
                baseline = json.load(handle)
            for metric in spec.metrics:
                extract_metric(baseline, metric.key)  # raises if missing


class TestHistoryAndResult:
    def test_result_document_shape(self):
        doc = bench_result(
            "obs_overhead", {"qps": 1.0},
            timestamp="2026-08-08T00:00:00+00:00", quick=True,
            git_rev="abc123", fingerprint={"machine": "x86_64"},
        )
        assert doc["format"] == "repro.bench.result/v1"
        assert doc["name"] == "obs_overhead"
        assert doc["timestamp"] == "2026-08-08T00:00:00+00:00"
        assert doc["quick"] is True
        assert doc["metrics"] == {"qps": 1.0}

    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "nested" / "history.jsonl")
        records = [
            bench_result("a", {"m": i}, timestamp=None, quick=False)
            for i in range(3)
        ]
        assert append_history(path, records) == 3
        assert append_history(path, records[:1]) == 1
        loaded = load_history(path)
        assert len(loaded) == 4
        assert [r["metrics"]["m"] for r in loaded] == [0, 1, 2, 0]

    def test_load_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = json.dumps(
            bench_result("a", {}, timestamp=None, quick=True)
        )
        path.write_text(good + "\nnot json\n" + good + "\n")
        assert len(load_history(str(path))) == 2


class TestBenchCheckCLI:
    """End-to-end: the real gate against real (and perturbed) baselines."""

    def test_quick_check_passes_and_appends_history(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        code = main([
            "bench", "check", "--quick",
            "--baseline-dir", REPO_ROOT,
            "--benchmarks-dir", BENCHMARKS_DIR,
            "--history", history,
            "obs_overhead",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "all gated metrics within tolerance" in out
        assert "skip (full run only)" in out
        (record,) = load_history(history)
        assert record["name"] == "obs_overhead"
        assert record["quick"] is True
        # Provenance is stamped by the CLI, not the library.
        assert record["timestamp"]

    def test_perturbed_baseline_fails_with_exit_code_8(
        self, tmp_path, capsys
    ):
        with open(os.path.join(REPO_ROOT, "BENCH_obs.json")) as handle:
            baseline = json.load(handle)
        # No machine reaches a thousand times the committed throughput.
        baseline["quanta_per_second"]["off"] = 1e9
        (tmp_path / "BENCH_obs.json").write_text(json.dumps(baseline))
        code = main([
            "bench", "check", "--quick", "--no-history",
            "--baseline-dir", str(tmp_path),
            "--benchmarks-dir", BENCHMARKS_DIR,
            "obs_overhead",
        ])
        assert code == EXIT_BENCH_REGRESSION == 8
        err = capsys.readouterr().err
        assert "benchmark regression" in err
        assert "quanta_per_second.off" in err

    def test_unknown_bench_is_usage_error(self, capsys):
        code = main(["bench", "check", "--no-history", "nope"])
        assert code == 2
