"""Shared fixtures: small, fast machine/channel configurations.

Tests favour tiny covert configurations (few bits, few cache sets, high
bandwidths) so the whole suite stays fast; the benchmarks run the
paper-scale experiments.
"""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.sim.machine import Machine
from repro.util.bitstream import Message


@pytest.fixture
def machine() -> Machine:
    """A default paper-configured machine with a fixed seed."""
    return Machine(seed=1234)


@pytest.fixture
def small_machine() -> Machine:
    """A machine with a short OS quantum for fast multi-quantum tests."""
    config = MachineConfig(os_quantum_seconds=0.002)
    return Machine(config=config, seed=99)


@pytest.fixture
def message8() -> Message:
    """An 8-bit message with both values present."""
    return Message.from_bits([1, 0, 1, 1, 0, 0, 1, 0])
