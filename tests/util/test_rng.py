"""Tests for deterministic RNG plumbing."""

import numpy as np

from repro.util.rng import derive_rng, make_rng, spawn_seed


class TestMakeRng:
    def test_seed_reproducible(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert a.tolist() == b.tolist()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(7, "bus").integers(0, 10**9, 5)
        b = derive_rng(7, "bus").integers(0, 10**9, 5)
        assert a.tolist() == b.tolist()

    def test_different_keys_differ(self):
        a = derive_rng(7, "bus").integers(0, 10**9, 5)
        b = derive_rng(7, "divider").integers(0, 10**9, 5)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").integers(0, 10**9, 5)
        b = derive_rng(2, "x").integers(0, 10**9, 5)
        assert a.tolist() != b.tolist()

    def test_multi_part_keys(self):
        a = derive_rng(3, "divider", 0).integers(0, 10**9, 3)
        b = derive_rng(3, "divider", 1).integers(0, 10**9, 3)
        assert a.tolist() != b.tolist()


def test_spawn_seed_in_range():
    seed = spawn_seed(make_rng(5))
    assert 0 <= seed < 2**63
