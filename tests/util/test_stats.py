"""Tests for histogram statistics and the Poisson reference."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DetectionError
from repro.util.stats import (
    histogram_mean,
    histogram_variance,
    index_of_dispersion,
    poisson_fit_quality,
    poisson_pmf,
    sample_counts_to_histogram,
)


class TestSampleCountsToHistogram:
    def test_basic(self):
        hist = sample_counts_to_histogram([0, 0, 1, 3], 5)
        assert hist.tolist() == [2, 1, 0, 1, 0]

    def test_clamps_to_last_bin(self):
        hist = sample_counts_to_histogram([2, 9, 100], 4)
        assert hist.tolist() == [0, 0, 1, 2]

    def test_negative_raises(self):
        with pytest.raises(DetectionError):
            sample_counts_to_histogram([-1], 4)

    def test_zero_bins_raises(self):
        with pytest.raises(DetectionError):
            sample_counts_to_histogram([1], 0)

    def test_empty_counts(self):
        assert sample_counts_to_histogram([], 3).sum() == 0

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=100))
    def test_total_preserved(self, counts):
        hist = sample_counts_to_histogram(counts, 128)
        assert hist.sum() == len(counts)


class TestMoments:
    def test_mean(self):
        # 3 windows at density 0, 1 window at density 4 -> mean 1.0
        assert histogram_mean([3, 0, 0, 0, 1]) == pytest.approx(1.0)

    def test_mean_empty(self):
        assert histogram_mean([0, 0, 0]) == 0.0

    def test_variance_of_constant(self):
        assert histogram_variance([0, 0, 10]) == pytest.approx(0.0)

    def test_variance_known(self):
        # densities 0 and 2, equally likely: mean 1, variance 1
        assert histogram_variance([5, 0, 5]) == pytest.approx(1.0)

    def test_dispersion_poisson_like(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(3.0, size=20_000)
        hist = sample_counts_to_histogram(counts, 64)
        assert index_of_dispersion(hist) == pytest.approx(1.0, abs=0.05)

    def test_dispersion_bursty(self):
        # Strong bimodality: dispersion far above 1.
        hist = np.zeros(64, dtype=int)
        hist[0] = 900
        hist[40] = 100
        assert index_of_dispersion(hist) > 10


class TestPoisson:
    def test_pmf_sums_to_one(self):
        ks = np.arange(200)
        assert poisson_pmf(ks, 5.0).sum() == pytest.approx(1.0, abs=1e-9)

    def test_lam_zero(self):
        pmf = poisson_pmf(np.arange(5), 0.0)
        assert pmf.tolist() == [1.0, 0.0, 0.0, 0.0, 0.0]

    def test_negative_lam_raises(self):
        with pytest.raises(DetectionError):
            poisson_pmf(np.arange(3), -1.0)

    def test_fit_quality_good_for_poisson(self):
        rng = np.random.default_rng(1)
        hist = sample_counts_to_histogram(rng.poisson(2.0, 50_000), 64)
        assert poisson_fit_quality(hist) < 0.05

    def test_fit_quality_bad_for_bimodal(self):
        hist = np.zeros(64, dtype=int)
        hist[0] = 500
        hist[30] = 500
        assert poisson_fit_quality(hist) > 0.5
