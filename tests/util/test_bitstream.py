"""Tests for message encoding and bit-error metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ChannelError
from repro.util.bitstream import (
    Message,
    bit_error_rate,
    bits_from_int,
    int_from_bits,
)


class TestBitsFromInt:
    def test_simple_value(self):
        assert bits_from_int(5, 4) == (0, 1, 0, 1)

    def test_zero(self):
        assert bits_from_int(0, 3) == (0, 0, 0)

    def test_full_width(self):
        assert bits_from_int(255, 8) == (1,) * 8

    def test_too_large_raises(self):
        with pytest.raises(ChannelError):
            bits_from_int(16, 4)

    def test_negative_raises(self):
        with pytest.raises(ChannelError):
            bits_from_int(-1, 4)

    def test_zero_width_raises(self):
        with pytest.raises(ChannelError):
            bits_from_int(0, 0)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        assert int_from_bits(bits_from_int(value, 32)) == value


class TestIntFromBits:
    def test_rejects_non_binary(self):
        with pytest.raises(ChannelError):
            int_from_bits([0, 2, 1])

    def test_empty_is_zero(self):
        assert int_from_bits([]) == 0


class TestBitErrorRate:
    def test_perfect(self):
        assert bit_error_rate([1, 0, 1], [1, 0, 1]) == 0.0

    def test_all_wrong(self):
        assert bit_error_rate([1, 1], [0, 0]) == 1.0

    def test_missing_bits_count_as_errors(self):
        assert bit_error_rate([1, 0, 1, 1], [1, 0]) == 0.5

    def test_extra_received_bits_ignored(self):
        assert bit_error_rate([1], [1, 0, 1]) == 0.0

    def test_empty_sent_raises(self):
        with pytest.raises(ChannelError):
            bit_error_rate([], [1])


class TestMessage:
    def test_value_roundtrip(self):
        msg = Message.from_int(0xDEAD, 16)
        assert msg.value == 0xDEAD
        assert len(msg) == 16

    def test_rejects_empty(self):
        with pytest.raises(ChannelError):
            Message(())

    def test_rejects_non_binary(self):
        with pytest.raises(ChannelError):
            Message.from_bits([0, 1, 2])

    def test_random_is_reproducible(self):
        assert Message.random(32, 7).bits == Message.random(32, 7).bits

    def test_random_differs_across_seeds(self):
        assert Message.random(64, 1).bits != Message.random(64, 2).bits

    def test_credit_card_is_64_bits(self):
        assert len(Message.random_credit_card(3)) == 64

    def test_ones_count(self):
        assert Message.from_bits([1, 0, 1, 1]).ones == 3

    def test_iteration(self):
        assert list(Message.from_bits([1, 0])) == [1, 0]

    def test_alternating_runs(self):
        msg = Message.from_bits([1, 1, 0, 1])
        assert msg.alternating_runs() == ((1, 2), (0, 1), (1, 1))

    def test_alternating_runs_single_run(self):
        assert Message.from_bits([0, 0, 0]).alternating_runs() == ((0, 3),)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    def test_runs_reconstruct_message(self, bits):
        msg = Message.from_bits(bits)
        rebuilt = []
        for bit, length in msg.alternating_runs():
            rebuilt.extend([bit] * length)
        assert tuple(rebuilt) == msg.bits
