"""Tests for the interval algebra underlying resource usage tracking."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.util.intervals import (
    Interval,
    clip_intervals,
    coverage_per_window,
    merge_intervals,
    overlap_length,
    total_length,
)


def ivs(*pairs):
    return [Interval(a, b) for a, b in pairs]


class TestInterval:
    def test_length(self):
        assert Interval(3, 10).length == 7

    def test_reversed_raises(self):
        with pytest.raises(SimulationError):
            Interval(5, 3)

    def test_empty_allowed(self):
        assert Interval(5, 5).length == 0

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(9, 12))
        assert not Interval(0, 10).overlaps(Interval(10, 12))

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 5).intersect(Interval(8, 9)).length == 0

    def test_contains_half_open(self):
        iv = Interval(2, 4)
        assert iv.contains(2)
        assert iv.contains(3)
        assert not iv.contains(4)


class TestMerge:
    def test_merges_overlapping(self):
        assert merge_intervals(ivs((5, 9), (0, 6))) == ivs((0, 9))

    def test_merges_adjacent(self):
        assert merge_intervals(ivs((0, 5), (5, 8))) == ivs((0, 8))

    def test_keeps_disjoint(self):
        assert merge_intervals(ivs((0, 2), (4, 6))) == ivs((0, 2), (4, 6))

    def test_drops_empty(self):
        assert merge_intervals(ivs((3, 3), (1, 2))) == ivs((1, 2))

    def test_total_length_deduplicates(self):
        assert total_length(ivs((0, 10), (5, 15))) == 15

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 1000)).map(
                lambda p: Interval(min(p), max(p))
            ),
            max_size=20,
        )
    )
    def test_merge_is_canonical(self, intervals):
        merged = merge_intervals(intervals)
        # Sorted, non-overlapping, non-adjacent.
        for a, b in zip(merged, merged[1:]):
            assert a.end < b.start
        # Total coverage preserved (point-by-point check on a sample grid).
        assert total_length(merged) == total_length(intervals)


class TestOverlapAndClip:
    def test_overlap_length(self):
        window = Interval(0, 100)
        assert overlap_length(window, ivs((10, 20), (15, 30), (90, 200))) == 30

    def test_clip(self):
        assert clip_intervals(ivs((5, 15), (40, 50)), Interval(10, 45)) == ivs(
            (10, 15), (40, 45)
        )


class TestCoveragePerWindow:
    def test_single_window(self):
        cov = coverage_per_window(ivs((2, 7)), 0, 10, 10)
        assert cov.tolist() == [5]

    def test_spanning_windows(self):
        cov = coverage_per_window(ivs((5, 25)), 0, 30, 10)
        assert cov.tolist() == [5, 10, 5]

    def test_empty_range(self):
        assert coverage_per_window(ivs((0, 5)), 10, 10, 5).size == 0

    def test_bad_width_raises(self):
        with pytest.raises(SimulationError):
            coverage_per_window([], 0, 10, 0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 80)).map(
                lambda p: Interval(p[0], p[0] + p[1])
            ),
            max_size=10,
        ),
        st.integers(1, 50),
    )
    def test_matches_bruteforce(self, intervals, width):
        t0, t1 = 0, 400
        fast = coverage_per_window(intervals, t0, t1, width)
        merged = merge_intervals(clip_intervals(intervals, Interval(t0, t1)))
        n = -(-(t1 - t0) // width)
        slow = np.zeros(n, dtype=np.int64)
        for w in range(n):
            window = Interval(t0 + w * width, t0 + (w + 1) * width)
            slow[w] = sum(window.intersect(iv).length for iv in merged)
        assert fast.tolist() == slow.tolist()
