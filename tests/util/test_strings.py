"""Tests for histogram discretization (clustering front-end)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DetectionError
from repro.util.strings import (
    discretize_histogram,
    levels_to_string,
    symbol_distance,
)


class TestDiscretize:
    def test_empty_bins_are_zero(self):
        symbols = discretize_histogram([0, 10, 0, 1000])
        assert symbols[0] == 0
        assert symbols[2] == 0

    def test_max_bin_gets_top_level(self):
        symbols = discretize_histogram([0, 1, 1000], levels=4)
        assert symbols[2] == 3

    def test_log_scale_separates_magnitudes(self):
        symbols = discretize_histogram([0, 2, 40, 4000], levels=4)
        assert symbols[1] < symbols[2] < symbols[3]

    def test_uniform_nonzero_maps_to_top(self):
        symbols = discretize_histogram([5, 5, 5], levels=3)
        assert symbols.tolist() == [2, 2, 2]

    def test_all_zero(self):
        assert discretize_histogram([0, 0, 0]).tolist() == [0, 0, 0]

    def test_needs_two_levels(self):
        with pytest.raises(DetectionError):
            discretize_histogram([1], levels=1)

    def test_negative_raises(self):
        with pytest.raises(DetectionError):
            discretize_histogram([-1, 2])

    def test_empty_raises(self):
        with pytest.raises(DetectionError):
            discretize_histogram([])

    @given(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=128),
        st.integers(2, 8),
    )
    def test_symbols_in_range(self, hist, levels):
        symbols = discretize_histogram(hist, levels=levels)
        assert symbols.min() >= 0
        assert symbols.max() <= levels - 1
        # Zero bins always map to symbol 0; non-zero bins never do.
        for value, symbol in zip(hist, symbols):
            assert (symbol == 0) == (value == 0)


class TestStringRendering:
    def test_levels_to_string(self):
        assert levels_to_string([0, 1, 3, 2]) == "0132"

    def test_rejects_out_of_alphabet(self):
        with pytest.raises(DetectionError):
            levels_to_string([99])


class TestSymbolDistance:
    def test_identical_is_zero(self):
        assert symbol_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_distance(self):
        assert symbol_distance([0, 0], [2, 4]) == pytest.approx(3.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(DetectionError):
            symbol_distance([1], [1, 2])
