"""Tests for trace export / offline analysis."""

import pytest

from repro.analysis.figures import run_channel_session
from repro.errors import DetectionError
from repro.sim.machine import Machine
from repro.traces import analyze_traces, export_traces, load_traces
from repro.util.bitstream import Message


@pytest.fixture(scope="module")
def bus_session(tmp_path_factory):
    run = run_channel_session(
        "membus", Message.random(30, 7), bandwidth_bps=100.0, seed=7
    )
    path = tmp_path_factory.mktemp("traces") / "bus.npz"
    archive = export_traces(run.machine, path)
    return run, path, archive


class TestRoundTrip:
    def test_archive_matches_live_taps(self, bus_session):
        run, _path, archive = bus_session
        horizon = archive.horizon
        live = run.machine.bus_lock_tap.times_in(0, horizon)
        assert archive.bus_lock_times.tolist() == live.tolist()
        assert archive.n_quanta == run.quanta

    def test_load_equals_export(self, bus_session):
        _run, path, archive = bus_session
        loaded = load_traces(path)
        assert loaded.quantum_cycles == archive.quantum_cycles
        assert loaded.bus_lock_times.tolist() == (
            archive.bus_lock_times.tolist()
        )
        assert loaded.cache_times.size == archive.cache_times.size
        assert set(loaded.divider_wait_counts) == {0, 1, 2, 3}

    def test_export_requires_quanta(self, tmp_path):
        with pytest.raises(DetectionError):
            export_traces(Machine(seed=1), tmp_path / "x.npz")


class TestOfflineAnalysis:
    def test_bus_channel_detected_offline(self, bus_session):
        _run, path, _archive = bus_session
        report = analyze_traces(load_traces(path))
        assert report.verdict_for("membus").detected
        assert not report.verdict_for("cache").detected

    def test_offline_covers_active_units(self, bus_session):
        _run, path, _archive = bus_session
        report = analyze_traces(load_traces(path))
        units = {v.unit for v in report.verdicts}
        assert "membus" in units
        assert "cache" in units
        # Idle units (no noise pair shared a core's divider) are skipped.
        assert not any(u.startswith("divider") for u in units)

    def test_offline_divider_unit_included_when_active(self, tmp_path):
        run = run_channel_session(
            "divider", Message.random(20, 4), bandwidth_bps=100.0, seed=4
        )
        path = tmp_path / "div.npz"
        export_traces(run.machine, path)
        report = analyze_traces(load_traces(path))
        assert report.verdict_for("divider(core 0)").detected

    def test_cache_channel_detected_offline(self, tmp_path):
        run = run_channel_session(
            "cache", Message.random(10, 3), bandwidth_bps=100.0, seed=3,
            n_sets_total=64,
        )
        path = tmp_path / "cache.npz"
        export_traces(run.machine, path)
        report = analyze_traces(load_traces(path))
        verdict = report.verdict_for("cache")
        assert verdict.detected
        assert verdict.dominant_period == pytest.approx(64, rel=0.3)

    def test_custom_delta_t(self, bus_session):
        _run, path, _archive = bus_session
        report = analyze_traces(load_traces(path), bus_dt=1_000_000)
        # Wider Δt still exposes the burst mode for this channel.
        assert report.verdict_for("membus").max_likelihood_ratio > 0.8

    def test_divider_rebinning(self, tmp_path):
        run = run_channel_session(
            "divider", Message.random(20, 4), bandwidth_bps=100.0, seed=4
        )
        path = tmp_path / "div.npz"
        export_traces(run.machine, path)
        archive = load_traces(path)
        report = analyze_traces(archive, divider_dt=archive.divider_dt * 4)
        assert report.verdict_for("divider(core 0)").detected

    def test_non_multiple_dt_rejected(self, tmp_path):
        run = run_channel_session(
            "divider", Message.random(20, 4), bandwidth_bps=100.0, seed=4
        )
        path = tmp_path / "div2.npz"
        export_traces(run.machine, path)
        archive = load_traces(path)
        with pytest.raises(DetectionError):
            analyze_traces(archive, divider_dt=archive.divider_dt + 1)

    def test_offline_matches_online_verdict(self, bus_session):
        run, path, _archive = bus_session
        online = run.hunter.report().verdict_for("membus")
        offline = analyze_traces(load_traces(path)).verdict_for("membus")
        assert online.detected == offline.detected
        assert offline.max_likelihood_ratio == pytest.approx(
            online.max_likelihood_ratio, abs=0.05
        )


class TestLiveReplayParity:
    """Replay goes through the same pipeline as live sessions, so the
    verdicts must be *identical*, not merely close."""

    def test_bus_replay_verdict_identical(self, bus_session):
        run, path, _archive = bus_session
        live = run.hunter.report().verdict_for("membus")
        replayed = analyze_traces(load_traces(path)).verdict_for("membus")
        assert replayed == live

    def test_cache_replay_verdict_identical(self, tmp_path):
        run = run_channel_session(
            "cache", Message.random(10, 3), bandwidth_bps=100.0, seed=3,
            n_sets_total=64,
        )
        path = tmp_path / "cache.npz"
        export_traces(run.machine, path)
        live = run.hunter.report().verdict_for("cache")
        replayed = analyze_traces(load_traces(path)).verdict_for("cache")
        assert replayed == live

    def test_divider_replay_verdict_identical(self, tmp_path):
        run = run_channel_session(
            "divider", Message.random(20, 4), bandwidth_bps=100.0, seed=4
        )
        path = tmp_path / "div.npz"
        export_traces(run.machine, path)
        live = run.hunter.report().verdict_for("divider(core 0)")
        replayed = analyze_traces(load_traces(path)).verdict_for(
            "divider(core 0)"
        )
        assert replayed == live
