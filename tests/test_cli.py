"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.channel == "membus"
        assert args.bandwidth == 10.0

    def test_figure_number(self):
        args = build_parser().parse_args(["figure", "8"])
        assert args.number == 8


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "0.0028" in out

    def test_detect_small(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "1000",
            "--bits", "8", "--no-noise",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit error rate: 0.000" in out
        assert "CC-Hunter detection report" in out

    def test_detect_json(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "1000",
            "--bits", "8", "--no-noise", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["channel"] == "membus"
        assert payload["bit_error_rate"] == 0.0
        verdicts = payload["report"]["verdicts"]
        assert verdicts[0]["unit"] == "membus"
        assert "first_detection_quantum" in payload

    def test_detect_stream_prints_per_quantum(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "100",
            "--bits", "20", "--no-noise", "--stream",
        ])
        assert code == 0
        out = capsys.readouterr().out
        quantum_lines = [l for l in out.splitlines()
                         if l.startswith("[quantum")]
        assert len(quantum_lines) >= 2  # one verdict line per quantum
        assert "first detection [membus]" in out

    def test_detect_stream_jsonl(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "1000",
            "--bits", "8", "--no-noise", "--stream", "--json",
        ])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) >= 2  # per-quantum lines plus the final report
        for line in lines:
            payload = json.loads(line)
            assert "report" in payload

    def test_figure_6(self, capsys):
        assert main(["figure", "6", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out
        assert "Figure 6b" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_record_and_analyze_roundtrip(self, tmp_path, capsys):
        archive_path = str(tmp_path / "session.npz")
        assert main([
            "record", archive_path, "--channel", "membus",
            "--bandwidth", "100", "--bits", "30", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 3 quanta" in out
        # analyze exits 3 when something was detected.
        assert main(["analyze", archive_path]) == 3
        out = capsys.readouterr().out
        assert "membus" in out
        assert "COVERT TIMING CHANNEL LIKELY" in out

    def test_analyze_json(self, tmp_path, capsys):
        archive_path = str(tmp_path / "session.npz")
        assert main([
            "record", archive_path, "--channel", "membus",
            "--bandwidth", "100", "--bits", "30", "--seed", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", archive_path, "--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["any_detected"] is True
        assert any(
            v["unit"] == "membus" and v["detected"]
            for v in payload["verdicts"]
        )

    def test_false_alarms_exit_code(self, capsys):
        assert main(["false-alarms", "--quanta", "2"]) == 0
        out = capsys.readouterr().out
        assert "false alarms: 0" in out
