"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect"])
        assert args.channel == "membus"
        assert args.bandwidth == 10.0

    def test_figure_number(self):
        args = build_parser().parse_args(["figure", "8"])
        assert args.number == 8


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "0.0028" in out

    def test_detect_small(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "1000",
            "--bits", "8", "--no-noise",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit error rate: 0.000" in out
        assert "CC-Hunter detection report" in out

    def test_detect_json(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "1000",
            "--bits", "8", "--no-noise", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["channel"] == "membus"
        assert payload["bit_error_rate"] == 0.0
        verdicts = payload["report"]["verdicts"]
        assert verdicts[0]["unit"] == "membus"
        assert "first_detection_quantum" in payload

    def test_detect_stream_prints_per_quantum(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "100",
            "--bits", "20", "--no-noise", "--stream",
        ])
        assert code == 0
        out = capsys.readouterr().out
        quantum_lines = [l for l in out.splitlines()
                         if l.startswith("[quantum")]
        assert len(quantum_lines) >= 2  # one verdict line per quantum
        assert "first detection [membus]" in out

    def test_detect_stream_jsonl(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "1000",
            "--bits", "8", "--no-noise", "--stream", "--json",
        ])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) >= 2  # per-quantum lines plus the final report
        for line in lines:
            payload = json.loads(line)
            assert "report" in payload

    def test_figure_6(self, capsys):
        assert main(["figure", "6", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out
        assert "Figure 6b" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_record_and_analyze_roundtrip(self, tmp_path, capsys):
        archive_path = str(tmp_path / "session.npz")
        assert main([
            "record", archive_path, "--channel", "membus",
            "--bandwidth", "100", "--bits", "30", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 3 quanta" in out
        # analyze exits 3 when something was detected.
        assert main(["analyze", archive_path]) == 3
        out = capsys.readouterr().out
        assert "membus" in out
        assert "COVERT TIMING CHANNEL LIKELY" in out

    def test_analyze_json(self, tmp_path, capsys):
        archive_path = str(tmp_path / "session.npz")
        assert main([
            "record", archive_path, "--channel", "membus",
            "--bandwidth", "100", "--bits", "30", "--seed", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", archive_path, "--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["any_detected"] is True
        assert any(
            v["unit"] == "membus" and v["detected"]
            for v in payload["verdicts"]
        )

    def test_false_alarms_exit_code(self, capsys):
        assert main(["false-alarms", "--quanta", "2"]) == 0
        out = capsys.readouterr().out
        assert "false alarms: 0" in out


class TestRobustness:
    """--inject plumbing and the documented exit-code taxonomy."""

    def _record(self, tmp_path, capsys):
        archive_path = str(tmp_path / "session.npz")
        assert main([
            "record", archive_path, "--channel", "membus",
            "--bandwidth", "100", "--bits", "30", "--seed", "2",
        ]) == 0
        capsys.readouterr()
        return archive_path

    def test_detect_with_injection_reports_degraded(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bandwidth", "100",
            "--bits", "20", "--no-noise", "--inject", "drop:0.30",
            "--json",
        ])
        assert code == 0  # degraded, not dead
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["health"] == "degraded"

    def test_bad_inject_spec_is_usage_error(self, capsys):
        code = main([
            "detect", "--channel", "membus", "--bits", "8",
            "--inject", "warp:0.1",
        ])
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_analyze_missing_archive_exits_5(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope.npz")])
        assert code == 5
        assert "repro: error:" in capsys.readouterr().err

    def test_analyze_corrupt_archive_exits_4(self, tmp_path, capsys):
        from repro.faults import corrupt_archive

        archive_path = self._record(tmp_path, capsys)
        corrupt_archive(archive_path, seed=3)
        code = main(["analyze", archive_path])
        assert code == 4
        err = capsys.readouterr().err
        assert "integrity" in err

    def test_analyze_truncated_archive_exits_4(self, tmp_path, capsys):
        archive_path = self._record(tmp_path, capsys)
        data = open(archive_path, "rb").read()
        with open(archive_path, "wb") as handle:
            handle.write(data[: len(data) // 3])
        assert main(["analyze", archive_path]) == 4

    def test_analyze_skip_corrupt_degrades(self, tmp_path, capsys):
        from repro.faults import corrupt_archive

        archive_path = self._record(tmp_path, capsys)
        # Corrupt the membus record specifically so the gap lands on a
        # channel the analyzers actually watch.
        corrupt_archive(archive_path, keys=["bus_lock_times"], seed=3)
        code = main(["analyze", archive_path, "--skip-corrupt", "--json"])
        assert code in (0, 3)  # completed; detection depends on damage
        captured = capsys.readouterr()
        assert "corrupt records skipped" in captured.err
        payload = json.loads(captured.out)
        assert payload["health"] == "degraded"

    def test_analyze_with_injection(self, tmp_path, capsys):
        archive_path = self._record(tmp_path, capsys)
        code = main([
            "analyze", archive_path, "--inject", "drop:0.30", "--json",
        ])
        assert code in (0, 3)
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"] == "degraded"

    def test_trial_timeout_flag_parses(self):
        args = build_parser().parse_args(
            ["--trial-timeout", "2.5", "figure", "10"]
        )
        assert args.trial_timeout == 2.5
        args = build_parser().parse_args(
            ["figure", "10", "--trial-timeout", "2.5"]
        )
        assert args.trial_timeout == 2.5
        args = build_parser().parse_args(["figure", "10"])
        assert args.trial_timeout is None


class TestObservability:
    DETECT = [
        "detect", "--channel", "membus", "--bandwidth", "1000",
        "--bits", "8", "--no-noise",
    ]

    def test_detect_metrics_out(self, tmp_path, capsys):
        from repro.obs.metrics import load_snapshot, metric_names

        path = str(tmp_path / "metrics.json")
        assert main(self.DETECT + ["--metrics-out", path]) == 0
        assert "metrics snapshot written" in capsys.readouterr().err
        snapshot = load_snapshot(path)
        names = set(metric_names(snapshot))
        # The acceptance contract: throughput, per-analyzer push latency,
        # first detection, and accumulator saturation are all in the file.
        assert "cchunter_sim_quanta_per_second" in names
        assert "cchunter_analyzer_push_seconds" in names
        assert "cchunter_first_detection_quantum" in names
        assert "cchunter_analyzer_clamp_events_total" in names
        assert "cchunter_analyzer_entry_saturation_total" in names
        push = snapshot["metrics"]["cchunter_analyzer_push_seconds"]
        assert push["series"][0]["labels"] == {"unit": "membus"}
        assert push["series"][0]["count"] >= 1

    def test_detect_trace_out(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(self.DETECT + ["--trace-out", str(path)]) == 0
        assert "chrome trace" in capsys.readouterr().err
        doc = json.loads(path.read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert {"sim.quantum", "source.emit", "analyzer.push"} <= names

    def test_metrics_subcommand_prometheus(self, tmp_path, capsys):
        path = str(tmp_path / "metrics.json")
        assert main(self.DETECT + ["--metrics-out", path]) == 0
        capsys.readouterr()
        assert main(["metrics", path]) == 0
        text = capsys.readouterr().out
        assert "# TYPE cchunter_sim_quanta_total counter" in text
        assert (
            'cchunter_analyzer_push_seconds_bucket{unit="membus",le="+Inf"}'
            in text
        )
        assert 'cchunter_first_detection_quantum{unit="membus"}' in text

    def test_metrics_subcommand_json(self, tmp_path, capsys):
        path = str(tmp_path / "metrics.json")
        assert main(self.DETECT + ["--metrics-out", path]) == 0
        capsys.readouterr()
        assert main(["metrics", path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro.obs.metrics/v1"

    def test_prometheus_names_match_json_names(self, tmp_path, capsys):
        """Identical metric names in JSON snapshot and text exposition."""
        import re

        from repro.obs.metrics import load_snapshot, metric_names

        path = str(tmp_path / "metrics.json")
        assert main(self.DETECT + ["--metrics-out", path]) == 0
        capsys.readouterr()
        assert main(["metrics", path]) == 0
        text = capsys.readouterr().out
        exposed = {
            m.group(1)
            for m in re.finditer(r"^# TYPE (\S+)", text, flags=re.M)
        }
        assert exposed == set(metric_names(load_snapshot(path)))

    def test_analyze_metrics_out(self, tmp_path, capsys):
        from repro.obs.metrics import load_snapshot

        archive_path = str(tmp_path / "session.npz")
        assert main([
            "record", archive_path, "--channel", "membus",
            "--bandwidth", "100", "--bits", "30", "--seed", "2",
        ]) == 0
        capsys.readouterr()
        path = str(tmp_path / "metrics.json")
        assert main(["analyze", archive_path, "--metrics-out", path]) == 3
        snapshot = load_snapshot(path)
        metrics = snapshot["metrics"]
        assert metrics["cchunter_replay_quanta_total"]["series"][0][
            "value"
        ] == 3
        # The replay ran eagerly, so first detection is in the snapshot.
        first = metrics["cchunter_first_detection_quantum"]["series"]
        assert any(
            s["labels"] == {"unit": "membus"} and s["value"] >= 0
            for s in first
        )

    def test_log_level_flag(self, capsys):
        assert main(["--log-level", "DEBUG"] + self.DETECT) == 0
        err = capsys.readouterr().err
        assert "repro.sim.machine" in err

    def test_log_json_flag(self, capsys):
        assert main(
            ["--log-level", "DEBUG", "--log-json"] + self.DETECT
        ) == 0
        lines = [
            line for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["logger"].startswith("repro.")


class TestForensics:
    DETECT = [
        "detect", "--channel", "membus", "--bandwidth", "1000",
        "--bits", "8", "--no-noise",
    ]

    def _record(self, tmp_path):
        archive = str(tmp_path / "trace.npz")
        assert main([
            "record", archive, "--channel", "membus",
            "--bandwidth", "100", "--bits", "30", "--seed", "2",
        ]) == 0
        return archive

    def test_detect_evidence_out(self, tmp_path, capsys):
        from repro.obs.evidence import EVIDENCE_FORMAT, load_evidence

        path = str(tmp_path / "ev.json")
        assert main(self.DETECT + ["--evidence-out", path]) == 0
        assert "evidence bundles" in capsys.readouterr().err
        doc = load_evidence(path)
        assert doc["format"] == EVIDENCE_FORMAT
        bundle = doc["units"]["membus"]
        assert bundle["method"] == "burst"
        assert bundle["lr_trajectory"]
        meta = doc["meta"]
        assert meta["channel"] == "membus"
        assert meta["lr_threshold"] == 0.5
        verdicts = meta["report"]["verdicts"]
        assert verdicts and "evidence" not in verdicts[0]

    def test_detect_report_out_html(self, tmp_path, capsys):
        path = str(tmp_path / "report.html")
        assert main(self.DETECT + ["--report-out", path]) == 0
        assert "forensic report (html)" in capsys.readouterr().err
        html = open(path).read()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "membus" in html

    def test_detect_timeseries_out(self, tmp_path, capsys):
        from repro.obs.timeseries import load_jsonl, series_keys

        path = str(tmp_path / "ts.jsonl")
        assert main(self.DETECT + ["--timeseries-out", path]) == 0
        assert "metrics time series" in capsys.readouterr().err
        header, records = load_jsonl(path)
        assert header["source"] == "detect"
        assert records
        assert records[-1]["label"] == "close"
        assert "cchunter_sim_quanta_total" in series_keys(records)

    def test_detect_watch_plain_stream(self, capsys):
        assert main(self.DETECT + ["--watch"]) == 0
        err = capsys.readouterr().err
        assert "CC-Hunter watch" in err
        assert "session closed" in err

    def test_report_subcommand_stdout(self, tmp_path, capsys):
        ev = str(tmp_path / "ev.json")
        assert main(self.DETECT + ["--evidence-out", ev]) == 0
        capsys.readouterr()
        assert main(["report", ev]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<!DOCTYPE html>")
        assert "<svg" in out

    def test_report_subcommand_markdown_out(self, tmp_path, capsys):
        ev = str(tmp_path / "ev.json")
        ts = str(tmp_path / "ts.jsonl")
        assert main(
            self.DETECT + ["--evidence-out", ev, "--timeseries-out", ts]
        ) == 0
        capsys.readouterr()
        out = str(tmp_path / "report.md")
        assert main(["report", ev, "--timeseries", ts, "--out", out]) == 0
        assert "forensic report (md)" in capsys.readouterr().err
        text = open(out).read()
        assert text.startswith("# CC-Hunter forensic report")
        assert "## membus" in text

    def test_report_rejects_corrupt_evidence(self, tmp_path, capsys):
        from repro.errors import EXIT_CORRUPT_ARCHIVE

        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            handle.write('{"format": "other"}')
        assert main(["report", path]) == EXIT_CORRUPT_ARCHIVE
        assert "error" in capsys.readouterr().err

    def test_analyze_forensic_outputs(self, tmp_path, capsys):
        from repro.obs.evidence import load_evidence

        archive = self._record(tmp_path)
        ev = str(tmp_path / "ev.json")
        report_path = str(tmp_path / "report.html")
        assert main([
            "analyze", archive, "--evidence-out", ev,
            "--report-out", report_path,
        ]) == 3  # the recorded channel is detected
        capsys.readouterr()
        doc = load_evidence(ev)
        assert set(doc["units"]) == {"membus", "cache"}
        assert doc["meta"]["command"] == "analyze"
        html = open(report_path).read()
        assert "<svg" in html and "cache" in html

    def test_figure_metrics_out(self, tmp_path, capsys):
        from repro.obs.metrics import load_snapshot, metric_names

        path = str(tmp_path / "m.json")
        assert main(["figure", "6", "--metrics-out", path]) == 0
        assert "metrics snapshot written" in capsys.readouterr().err
        names = set(metric_names(load_snapshot(path)))
        assert "cchunter_sim_quanta_total" in names

    def test_false_alarms_metrics_out(self, tmp_path, capsys):
        from repro.obs.metrics import load_snapshot

        path = str(tmp_path / "m.json")
        code = main([
            "false-alarms", "--quanta", "2", "--metrics-out", path,
        ])
        assert code in (0, 1)
        assert "metrics snapshot written" in capsys.readouterr().err
        snapshot = load_snapshot(path)
        series = snapshot["metrics"]["cchunter_exec_trials_total"]["series"]
        assert sum(s["value"] for s in series) > 0
