"""Tests for configuration validation and derived quantities."""

import pytest

from repro.config import (
    AuditorConfig,
    BusConfig,
    CacheConfig,
    FunctionalUnitConfig,
    MachineConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_paper_l2_geometry(self):
        l2 = CacheConfig()
        assert l2.n_blocks == 4096
        assert l2.n_sets == 512

    def test_paper_l1_geometry(self):
        l1 = MachineConfig().l1
        assert l1.size_bytes == 32 * 1024

    def test_non_integral_sets_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=8)

    def test_hit_must_beat_miss(self):
        with pytest.raises(ConfigError):
            CacheConfig(hit_latency=200, miss_latency=100)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0)


class TestBusConfig:
    def test_defaults_valid(self):
        bus = BusConfig()
        assert bus.lock_duration > 0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigError):
            BusConfig(locked_extra_latency=-1)

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigError):
            BusConfig(base_latency=0)


class TestFunctionalUnitConfig:
    def test_defaults_valid(self):
        unit = FunctionalUnitConfig()
        assert unit.contention_event_period == pytest.approx(5.2)

    def test_bad_period(self):
        with pytest.raises(ConfigError):
            FunctionalUnitConfig(contention_event_period=0)

    def test_bad_latency(self):
        with pytest.raises(ConfigError):
            FunctionalUnitConfig(latency=0)


class TestMachineConfig:
    def test_paper_topology(self):
        config = MachineConfig()
        assert config.n_contexts == 8
        assert config.quantum_cycles == 250_000_000

    def test_multiplier_faster_than_divider(self):
        config = MachineConfig()
        assert config.multiplier.latency < config.divider.latency

    def test_bad_core_count(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_cores=0)

    def test_bad_frequency(self):
        with pytest.raises(ConfigError):
            MachineConfig(frequency_hz=0)

    def test_bad_quantum(self):
        with pytest.raises(ConfigError):
            MachineConfig(os_quantum_seconds=0)


class TestAuditorConfig:
    def test_paper_sizing(self):
        auditor = AuditorConfig()
        assert auditor.n_monitors == 2
        assert auditor.histogram_bins == 128
        assert auditor.accumulator_max == 65535
        assert auditor.histogram_entry_max == 65535

    def test_super_secure_mode_possible(self):
        """The paper mentions monitoring all units in super-secure
        environments; the config supports more monitor slots."""
        auditor = AuditorConfig(n_monitors=9)
        assert auditor.n_monitors == 9

    def test_bad_monitors(self):
        with pytest.raises(ConfigError):
            AuditorConfig(n_monitors=0)

    def test_bad_bins(self):
        with pytest.raises(ConfigError):
            AuditorConfig(histogram_bins=1)

    def test_bad_widths(self):
        with pytest.raises(ConfigError):
            AuditorConfig(accumulator_bits=0)
