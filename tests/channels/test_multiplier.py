"""Tests for the multiplier variant of the SMT contention channel."""

import numpy as np
import pytest

from repro.channels.base import ChannelConfig
from repro.channels.divider import MultiplierCovertChannel
from repro.core.detector import AuditUnit, CCHunter
from repro.sim.machine import Machine
from repro.util.bitstream import Message


def run_channel(message, bandwidth=1000.0, seed=3, core=0):
    machine = Machine(seed=seed)
    channel = MultiplierCovertChannel(
        machine, ChannelConfig(message=message, bandwidth_bps=bandwidth)
    )
    channel.deploy(core=core)
    machine.run_until(channel.transmission_end + 1)
    return machine, channel


class TestTransmission:
    def test_decodes_exactly(self, message8):
        _, channel = run_channel(message8)
        assert channel.decoded_bits == list(message8.bits)

    def test_lower_latencies_than_divider(self, message8):
        from repro.channels.divider import DividerCovertChannel

        machine = Machine(seed=1)
        mul = MultiplierCovertChannel(machine, ChannelConfig(message8))
        div = DividerCovertChannel(Machine(seed=1), ChannelConfig(message8))
        assert mul._lat_idle < div._lat_idle
        assert mul.decode_threshold < div.decode_threshold


class TestIndicatorEvents:
    def test_events_land_in_multiplier_tap(self, message8):
        machine, _ = run_channel(message8)
        assert machine.multiplier_wait_taps[0].count > 0
        assert machine.divider_wait_taps[0].count == 0

    def test_wait_density_lower_than_divider(self):
        """The multiplier's pipelined contention fires sparser events."""
        machine, channel = run_channel(Message.from_bits([1, 1]))
        counts = machine.multiplier_wait_tap_for(0).density_counts(
            500, 0, channel.transmission_end
        )
        busy = counts[counts > 0]
        assert 40 <= np.median(busy) <= 55  # ~48 vs the divider's ~96


class TestDetection:
    def test_detected_end_to_end(self):
        machine = Machine(seed=5)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.MULTIPLIER, core=0)
        channel = MultiplierCovertChannel(
            machine,
            ChannelConfig(message=Message.random(24, 5),
                          bandwidth_bps=100.0),
        )
        channel.deploy(core=0)
        machine.run_quanta(channel.quanta_needed())
        verdict = hunter.report().verdicts[0]
        assert verdict.detected
        assert "multiplier" in verdict.unit

    def test_divider_audit_blind_to_multiplier_channel(self):
        """Auditing the wrong unit sees nothing — the administrator must
        pick units to watch (the paper's two-monitor tradeoff)."""
        machine = Machine(seed=5)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.DIVIDER, core=0)
        channel = MultiplierCovertChannel(
            machine,
            ChannelConfig(message=Message.random(24, 5),
                          bandwidth_bps=100.0),
        )
        channel.deploy(core=0)
        machine.run_quanta(channel.quanta_needed())
        assert not hunter.report().verdicts[0].detected

    def test_multiplier_audit_requires_core(self):
        hunter = CCHunter(Machine(seed=1))
        from repro.errors import DetectionError

        with pytest.raises(DetectionError):
            hunter.audit(AuditUnit.MULTIPLIER)
