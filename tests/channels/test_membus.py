"""Tests for the memory bus covert channel."""

import numpy as np
import pytest

from repro.channels.base import ChannelConfig
from repro.channels.membus import MemoryBusCovertChannel
from repro.errors import ChannelError
from repro.sim.machine import Machine
from repro.util.bitstream import Message


def run_channel(message, bandwidth=1000.0, seed=3, **kwargs):
    machine = Machine(seed=seed)
    channel = MemoryBusCovertChannel(
        machine, ChannelConfig(message=message, bandwidth_bps=bandwidth),
        **kwargs,
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)
    machine.run_until(channel.transmission_end + 1)
    return machine, channel


class TestTransmission:
    def test_decodes_exactly(self, message8):
        _, channel = run_channel(message8)
        assert channel.decoded_bits == list(message8.bits)
        assert channel.bit_error_rate() == 0.0

    def test_all_ones(self):
        _, channel = run_channel(Message.from_bits([1] * 6))
        assert channel.bit_error_rate() == 0.0

    def test_all_zeros(self):
        _, channel = run_channel(Message.from_bits([0] * 6))
        assert channel.bit_error_rate() == 0.0

    def test_latency_separation(self, message8):
        _, channel = run_channel(message8)
        per_bit = [float(np.mean(s)) for s in channel.spy_samples]
        ones = [m for m, b in zip(per_bit, message8.bits) if b == 1]
        zeros = [m for m, b in zip(per_bit, message8.bits) if b == 0]
        assert min(ones) > channel.decode_threshold > max(zeros)

    def test_sample_series_length(self, message8):
        _, channel = run_channel(message8)
        assert channel.sample_latencies().size == 8 * channel.samples_per_bit

    def test_empty_before_run(self, machine, message8):
        channel = MemoryBusCovertChannel(
            machine, ChannelConfig(message8)
        )
        assert channel.sample_latencies().size == 0


class TestIndicatorEvents:
    def test_lock_events_only_for_ones(self, message8):
        machine, channel = run_channel(message8)
        times = machine.bus_lock_tap.times()
        bit_idx = times // channel.bit_period
        bits = np.asarray(message8.bits)[np.minimum(bit_idx, 7)]
        assert (bits == 1).all()

    def test_lock_count_matches_protocol(self):
        message = Message.from_bits([1, 0, 1])
        machine, channel = run_channel(message)
        assert machine.bus_lock_tap.count == 2 * channel.locks_per_one

    def test_burst_density_near_paper_bin(self, message8):
        """~20 lock events per Δt = 100k cycles during '1' bits (Fig 6a)."""
        machine, channel = run_channel(Message.from_bits([1] * 4))
        counts = machine.bus_lock_tap.density_counts(
            100_000, 0, channel.transmission_end
        )
        busy = counts[counts > 0]
        assert 18 <= np.median(busy) <= 21


class TestValidation:
    def test_bad_lock_period(self, machine, message8):
        with pytest.raises(ChannelError):
            MemoryBusCovertChannel(
                machine, ChannelConfig(message8), lock_period=0
            )

    def test_bad_samples_per_bit(self, machine, message8):
        with pytest.raises(ChannelError):
            MemoryBusCovertChannel(
                machine, ChannelConfig(message8), samples_per_bit=0
            )
