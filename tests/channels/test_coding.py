"""Tests for repetition coding (covert reliability mechanics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.coding import RepetitionCode, coded_session_bits
from repro.errors import ChannelError
from repro.util.bitstream import Message, bit_error_rate


class TestEncodeDecode:
    def test_encode(self):
        code = RepetitionCode(3)
        assert code.encode(Message.from_bits([1, 0])).bits == (
            1, 1, 1, 0, 0, 0,
        )

    def test_decode_clean(self):
        code = RepetitionCode(3)
        assert code.decode([1, 1, 1, 0, 0, 0]) == [1, 0]

    def test_decode_corrects_single_flip(self):
        code = RepetitionCode(3)
        assert code.decode([1, 0, 1, 0, 1, 0]) == [1, 0]

    def test_decode_drops_partial_group(self):
        code = RepetitionCode(3)
        assert code.decode([1, 1, 1, 0]) == [1]

    def test_even_factor_rejected(self):
        with pytest.raises(ChannelError):
            RepetitionCode(2)

    def test_factor_one_identity(self):
        code = RepetitionCode(1)
        msg = Message.from_bits([1, 0, 1])
        assert code.decode(list(code.encode(msg))) == list(msg)

    @settings(max_examples=25)
    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=32),
        st.sampled_from([1, 3, 5, 7]),
    )
    def test_roundtrip(self, bits, factor):
        code = RepetitionCode(factor)
        msg = Message.from_bits(bits)
        assert code.decode(list(code.encode(msg))) == bits

    @settings(max_examples=25)
    @given(
        st.lists(st.integers(0, 1), min_size=2, max_size=16),
        st.integers(0, 10_000),
    )
    def test_single_error_per_group_corrected(self, bits, seed):
        code = RepetitionCode(3)
        rng = np.random.default_rng(seed)
        raw = list(code.encode(Message.from_bits(bits)))
        # Flip exactly one repetition of one bit.
        target = int(rng.integers(0, len(bits)))
        flip = target * 3 + int(rng.integers(0, 3))
        raw[flip] ^= 1
        assert code.decode(raw) == bits


class TestReliabilityMath:
    def test_residual_ber_improves_below_half(self):
        code = RepetitionCode(5)
        assert code.residual_ber(0.1) < 0.1

    def test_residual_ber_at_half_stays_half(self):
        for factor in (3, 5, 7):
            assert RepetitionCode(factor).residual_ber(0.5) == pytest.approx(
                0.5
            )

    def test_bandwidth_cost(self):
        assert RepetitionCode(5).effective_bandwidth(100.0) == 20.0

    def test_known_value(self):
        # n=3, p=0.1: 3*0.01*0.9 + 0.001 = 0.028
        assert RepetitionCode(3).residual_ber(0.1) == pytest.approx(0.028)

    def test_bad_ber(self):
        with pytest.raises(ChannelError):
            RepetitionCode(3).residual_ber(1.5)


class TestEndToEnd:
    def test_coded_transmission_survives_fuzzing_partially(self):
        """Moderate clock fuzzing: repetition recovers the payload the raw
        channel garbles; heavy fuzzing (BER ~ 0.5) stays unrecoverable."""
        from repro.channels.base import ChannelConfig
        from repro.channels.membus import MemoryBusCovertChannel
        from repro.mitigation import apply_clock_fuzzing
        from repro.sim.machine import Machine

        payload = Message.from_bits([1, 0, 1, 1, 0, 0])
        code = RepetitionCode(5)
        on_channel = coded_session_bits(payload, factor=5)

        machine = Machine(seed=9)
        apply_clock_fuzzing(machine, fuzz_cycles=1200)  # moderate
        channel = MemoryBusCovertChannel(
            machine,
            ChannelConfig(message=on_channel, bandwidth_bps=1000.0),
        )
        channel.deploy(trojan_ctx=0, spy_ctx=2)
        machine.run_until(channel.transmission_end + 1)

        raw_ber = channel.bit_error_rate()
        decoded = code.decode(channel.decoded_bits)
        coded_ber = bit_error_rate(tuple(payload), decoded)
        assert coded_ber <= raw_ber
