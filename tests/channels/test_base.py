"""Tests for shared covert-channel machinery."""

import pytest

from repro.channels.base import ChannelConfig, CovertChannel
from repro.errors import ChannelError
from repro.sim.process import Compute


class MiniChannel(CovertChannel):
    name = "mini"

    def _trojan_body(self, proc):
        yield Compute(10)

    def _spy_body(self, proc):
        yield Compute(10)


class TestChannelConfig:
    def test_bad_bandwidth(self, message8):
        with pytest.raises(ChannelError):
            ChannelConfig(message=message8, bandwidth_bps=0)

    def test_bad_active_cap(self, message8):
        with pytest.raises(ChannelError):
            ChannelConfig(message=message8, max_active_cycles=0)

    def test_bad_start_time(self, message8):
        with pytest.raises(ChannelError):
            ChannelConfig(message=message8, start_time=-1)


class TestPhaseTiming:
    def test_bit_period_from_bandwidth(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8, bandwidth_bps=10))
        assert ch.bit_period == 250_000_000

    def test_active_capped(self, machine, message8):
        ch = MiniChannel(
            machine,
            ChannelConfig(message8, bandwidth_bps=1.0,
                          max_active_cycles=1_000_000),
        )
        assert ch.active_cycles == 1_000_000

    def test_default_cap_applies(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8, bandwidth_bps=0.1))
        assert ch.active_cycles == MiniChannel.default_active_cap

    def test_high_bandwidth_uses_whole_bit(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8, bandwidth_bps=1000))
        assert ch.active_cycles == ch.bit_period

    def test_bit_start(self, machine, message8):
        ch = MiniChannel(
            machine, ChannelConfig(message8, bandwidth_bps=10, start_time=500)
        )
        assert ch.bit_start(0) == 500
        assert ch.bit_start(2) == 500 + 2 * 250_000_000

    def test_negative_bit_rejected(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8))
        with pytest.raises(ChannelError):
            ch.bit_start(-1)

    def test_quanta_needed(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8, bandwidth_bps=10))
        # 8 bits at 10 bps = 0.8 s = 8 quanta.
        assert ch.quanta_needed() == 8


class TestDeploy:
    def test_deploy_assigns_contexts(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8))
        ch.deploy(trojan_ctx=0, spy_ctx=2)
        assert ch.trojan_ctx == 0
        assert ch.spy_ctx == 2

    def test_double_deploy_rejected(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8))
        ch.deploy(trojan_ctx=0, spy_ctx=2)
        with pytest.raises(ChannelError):
            ch.deploy(trojan_ctx=1, spy_ctx=3)

    def test_results_before_deploy_rejected(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8))
        with pytest.raises(ChannelError):
            _ = ch.trojan_ctx

    def test_ber_counts_missing_bits(self, machine, message8):
        ch = MiniChannel(machine, ChannelConfig(message8))
        ch.decoded_bits = list(message8.bits[:4])
        assert ch.bit_error_rate() == pytest.approx(0.5)
