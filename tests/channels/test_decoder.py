"""Tests for spy-side decoding helpers."""

import numpy as np
import pytest

from repro.channels.decoder import (
    decode_by_threshold,
    decode_ratio,
    mean_by_bit_window,
)
from repro.errors import ChannelError


class TestThresholdDecode:
    def test_basic(self):
        assert decode_by_threshold([300.0, 150.0, 290.0], 250.0) == [1, 0, 1]

    def test_boundary_is_zero(self):
        assert decode_by_threshold([250.0], 250.0) == [0]

    def test_empty(self):
        assert decode_by_threshold([], 100.0) == []


class TestRatioDecode:
    def test_basic(self):
        assert decode_ratio([400.0, 150.0], [200.0, 300.0]) == [1, 0]

    def test_equal_means_zero(self):
        assert decode_ratio([200.0], [200.0]) == [0]

    def test_length_mismatch(self):
        with pytest.raises(ChannelError):
            decode_ratio([1.0], [1.0, 2.0])

    def test_bad_denominator(self):
        with pytest.raises(ChannelError):
            decode_ratio([1.0], [0.0])


class TestMeanByWindow:
    def test_basic(self):
        samples = np.array([1, 3, 10, 20, 5, 5])
        means = mean_by_bit_window(samples, 2)
        assert means.tolist() == [2.0, 15.0, 5.0]

    def test_trailing_partial_dropped(self):
        means = mean_by_bit_window(np.array([2, 2, 9]), 2)
        assert means.tolist() == [2.0]

    def test_too_few_samples(self):
        with pytest.raises(ChannelError):
            mean_by_bit_window(np.array([1]), 5)

    def test_bad_window(self):
        with pytest.raises(ChannelError):
            mean_by_bit_window(np.array([1, 2]), 0)
