"""Tests for the shared-L2 cache covert channel."""

import numpy as np
import pytest

from repro.channels.base import ChannelConfig
from repro.channels.cache import CacheCovertChannel
from repro.core.event_train import dominant_pair_series
from repro.errors import ChannelError
from repro.sim.machine import Machine
from repro.util.bitstream import Message


def run_channel(message, bandwidth=500.0, seed=3, n_sets=32, **kwargs):
    machine = Machine(seed=seed)
    channel = CacheCovertChannel(
        machine,
        ChannelConfig(message=message, bandwidth_bps=bandwidth),
        n_sets_total=n_sets,
        **kwargs,
    )
    channel.deploy()
    machine.run_until(channel.transmission_end + 1)
    return machine, channel


class TestTransmission:
    def test_decodes_after_warmup(self, message8):
        _, channel = run_channel(message8)
        # The first bit can be garbled by cold caches; the rest decode.
        assert channel.decoded_bits[1:] == list(message8.bits[1:])

    def test_ratios_flip_around_one(self, message8):
        _, channel = run_channel(message8)
        ratios = channel.latency_ratios()[1:]
        bits = message8.bits[1:]
        for ratio, bit in zip(ratios, bits):
            if bit == 1:
                assert ratio > 1.0
            else:
                assert ratio < 1.0

    def test_groups_disjoint(self, message8):
        _, channel = run_channel(message8)
        assert not set(channel.g1_sets) & set(channel.g0_sets)
        assert len(channel.g1_sets) == len(channel.g0_sets) == 16

    def test_group_seed_reproducible(self, machine, message8):
        a = CacheCovertChannel(machine, ChannelConfig(message8),
                               n_sets_total=32, group_seed=5)
        b = CacheCovertChannel(Machine(seed=9), ChannelConfig(message8),
                               n_sets_total=32, group_seed=5)
        assert a.g1_sets == b.g1_sets

    def test_empty_ratios_before_run(self, machine, message8):
        channel = CacheCovertChannel(machine, ChannelConfig(message8),
                                     n_sets_total=32)
        assert channel.latency_ratios().size == 0


class TestConflictTrain:
    def test_steady_state_alternating_phases(self, message8):
        """After warmup, the pair's conflict train alternates phases of one
        event per swept set — the wavelength equals the total sets used."""
        machine, channel = run_channel(message8)
        _, reps, vics = machine.cache_miss_tap.records()
        labels, _, pair = dominant_pair_series(reps, vics)
        assert set(pair) == {channel.trojan_ctx, channel.spy_ctx}
        changes = np.nonzero(np.diff(labels))[0]
        runs = np.diff(np.concatenate([[0], changes + 1, [labels.size]]))
        half = channel.n_sets_total // 2
        full_runs = (runs == half).sum()
        assert full_runs > 0.6 * runs.size

    def test_event_volume_scales_with_rounds(self):
        message = Message.from_bits([1, 0, 1, 0])
        machine, channel = run_channel(message)
        # Steady state: ~n_sets_total events per round (plus cold start).
        expected = channel.rounds_per_bit * len(message) * channel.n_sets_total
        assert machine.cache_miss_tap.count == pytest.approx(
            expected, rel=0.35
        )


class TestPacing:
    def test_high_bandwidth_single_cluster(self, message8):
        machine = Machine(seed=1)
        channel = CacheCovertChannel(
            machine, ChannelConfig(message8, bandwidth_bps=2000.0),
            n_sets_total=32,
        )
        assert channel.clusters_per_bit >= 1
        assert channel.rounds_per_bit >= channel.rounds_per_cluster

    def test_low_bandwidth_clusters_spread(self, message8):
        machine = Machine(seed=1)
        channel = CacheCovertChannel(
            machine, ChannelConfig(message8, bandwidth_bps=0.5),
            n_sets_total=32,
        )
        # Cluster spacing capped at one OS quantum.
        assert channel.cluster_interval == machine.quantum_cycles

    def test_cluster_fits_bit_period(self, message8):
        machine = Machine(seed=1)
        channel = CacheCovertChannel(
            machine, ChannelConfig(message8, bandwidth_bps=100.0),
            n_sets_total=64,
        )
        duration = channel.rounds_per_cluster * channel.round_period
        last_start = (channel.clusters_per_bit - 1) * channel.cluster_interval
        assert last_start + duration <= channel.bit_period

    def test_impossible_bandwidth_rejected(self, machine, message8):
        with pytest.raises(ChannelError):
            CacheCovertChannel(
                machine,
                ChannelConfig(message8, bandwidth_bps=50_000.0),
                n_sets_total=512,
            )


class TestValidation:
    def test_odd_set_count_rejected(self, machine, message8):
        with pytest.raises(ChannelError):
            CacheCovertChannel(machine, ChannelConfig(message8),
                               n_sets_total=33)

    def test_too_many_sets_rejected(self, machine, message8):
        with pytest.raises(ChannelError):
            CacheCovertChannel(machine, ChannelConfig(message8),
                               n_sets_total=2048)

    def test_min_rounds_per_cluster(self, machine, message8):
        with pytest.raises(ChannelError):
            CacheCovertChannel(machine, ChannelConfig(message8),
                               n_sets_total=32, rounds_per_cluster=1)

    def test_default_deploy_distinct_cores(self, message8):
        machine = Machine(seed=1)
        channel = CacheCovertChannel(machine, ChannelConfig(message8),
                                     n_sets_total=32)
        channel.deploy()
        assert channel.trojan.core != channel.spy.core


class TestEvasionKnobs:
    def test_bad_skip_prob(self, machine, message8):
        with pytest.raises(ChannelError):
            CacheCovertChannel(machine, ChannelConfig(message8),
                               n_sets_total=32, evasion_skip_prob=1.0)

    def test_bad_subset_frac(self, machine, message8):
        with pytest.raises(ChannelError):
            CacheCovertChannel(machine, ChannelConfig(message8),
                               n_sets_total=32, evasion_subset_frac=0.0)

    def test_skip_thins_train_but_keeps_runs(self, message8):
        clean_machine, clean = run_channel(message8)
        machine, channel = run_channel(message8, evasion_skip_prob=0.5)
        assert (
            machine.cache_miss_tap.count
            < 0.8 * clean_machine.cache_miss_tap.count
        )
        # Surviving rounds still produce full half-group runs.
        _, reps, vics = machine.cache_miss_tap.records()
        labels, _, _ = dominant_pair_series(reps, vics)
        changes = np.nonzero(np.diff(labels))[0]
        runs = np.diff(np.concatenate([[0], changes + 1, [labels.size]]))
        assert (runs == channel.n_sets_total // 2).sum() > 0.5 * runs.size

    def test_subset_shortens_runs(self, message8):
        machine, channel = run_channel(message8, evasion_subset_frac=0.4)
        _, reps, vics = machine.cache_miss_tap.records()
        labels, _, _ = dominant_pair_series(reps, vics)
        changes = np.nonzero(np.diff(labels))[0]
        runs = np.diff(np.concatenate([[0], changes + 1, [labels.size]]))
        half = channel.n_sets_total // 2
        # Hardly any full-length phases survive random subsetting.
        assert (runs == half).sum() < 0.2 * runs.size

    def test_subset_reduces_spy_contrast(self, message8):
        _, clean = run_channel(message8)
        _, evading = run_channel(message8, evasion_subset_frac=0.3)
        clean_contrast = np.abs(np.log(clean.latency_ratios()[1:])).mean()
        evading_contrast = np.abs(
            np.log(evading.latency_ratios()[1:])
        ).mean()
        assert evading_contrast < 0.5 * clean_contrast
