"""Tests for the SMT integer-divider covert channel."""

import numpy as np
import pytest

from repro.channels.base import ChannelConfig
from repro.channels.divider import DividerCovertChannel
from repro.errors import ChannelError
from repro.sim.machine import Machine
from repro.util.bitstream import Message


def run_channel(message, bandwidth=1000.0, seed=3, core=0):
    machine = Machine(seed=seed)
    channel = DividerCovertChannel(
        machine, ChannelConfig(message=message, bandwidth_bps=bandwidth)
    )
    channel.deploy(core=core)
    machine.run_until(channel.transmission_end + 1)
    return machine, channel


class TestTransmission:
    def test_decodes_exactly(self, message8):
        _, channel = run_channel(message8)
        assert channel.decoded_bits == list(message8.bits)

    def test_iteration_latency_separation(self, message8):
        _, channel = run_channel(message8)
        per_bit = [float(np.mean(s)) for s in channel.spy_samples]
        ones = [m for m, b in zip(per_bit, message8.bits) if b == 1]
        zeros = [m for m, b in zip(per_bit, message8.bits) if b == 0]
        assert min(ones) > channel.decode_threshold > max(zeros)

    def test_hyperthread_coresidency_enforced(self, message8):
        machine = Machine(seed=1)
        channel = DividerCovertChannel(machine, ChannelConfig(message8))
        with pytest.raises(ChannelError):
            channel.deploy(trojan_ctx=0, spy_ctx=2)  # different cores

    def test_default_deploy_uses_core_zero(self, message8):
        machine = Machine(seed=1)
        channel = DividerCovertChannel(machine, ChannelConfig(message8))
        channel.deploy()
        assert channel.trojan.core == 0
        assert channel.spy.core == 0

    def test_other_core_deploy(self, message8):
        _, channel = run_channel(message8, core=2)
        assert channel.bit_error_rate() == 0.0


class TestIndicatorEvents:
    def test_wait_events_only_for_ones(self):
        machine, channel = run_channel(Message.from_bits([1, 0, 0, 1]))
        counts = machine.divider_wait_tap_for(0).density_counts(
            channel.bit_period, 0, channel.transmission_end
        )
        assert counts[0] > 0
        assert counts[1] == 0
        assert counts[2] == 0
        assert counts[3] > 0

    def test_wait_density_near_paper_mode(self):
        """~96 wait events per 500-cycle window while saturated (Fig 6b)."""
        machine, channel = run_channel(Message.from_bits([1, 1]))
        counts = machine.divider_wait_tap_for(0).density_counts(
            500, 0, channel.transmission_end
        )
        busy = counts[counts > 0]
        assert 88 <= np.median(busy) <= 104

    def test_other_cores_untouched(self, message8):
        machine, _ = run_channel(message8, core=0)
        for core in (1, 2, 3):
            assert machine.divider_wait_tap_for(core).count == 0


class TestValidation:
    def test_bad_divs_per_iter(self, machine, message8):
        with pytest.raises(ChannelError):
            DividerCovertChannel(
                machine, ChannelConfig(message8), divs_per_iter=0
            )

    def test_spy_samples_bounded(self, message8):
        _, channel = run_channel(message8)
        for sample in channel.spy_samples:
            assert sample.size <= 250
