"""Tests for the named workload profiles and background noise."""

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    WORKLOADS,
    background_noise_processes,
    mailserver,
    stream,
    webserver,
)
from repro.workloads.spec import bzip2, gobmk, h264ref, sjeng


class TestProfileRegistry:
    def test_registry_members(self):
        for name in ("gobmk", "sjeng", "bzip2", "h264ref"):
            assert name in WORKLOADS

    def test_bus_heavy_profiles(self):
        """The paper pairs gobmk+sjeng for their memory-bus activity."""
        assert gobmk.bus_lock_rate_per_s > bzip2.bus_lock_rate_per_s
        assert sjeng.bus_lock_rate_per_s > h264ref.bus_lock_rate_per_s

    def test_division_heavy_profiles(self):
        """bzip2 and h264ref have significant integer division."""
        assert bzip2.divider_duty > 0.1
        assert h264ref.divider_duty > 0.1
        assert gobmk.divider_duty == 0.0

    def test_benign_divider_intensity_below_contention(self):
        from repro.sim.resources.divider import CONTENTION_INTENSITY

        for profile in (bzip2, h264ref):
            assert profile.divider_intensity < CONTENTION_INTENSITY

    def test_stream_is_streaming(self):
        assert stream.cache_tag_space > 100_000
        assert stream.divider_duty == 0.0

    def test_mailserver_has_lock_clusters(self):
        assert mailserver.bus_lock_bursts is not None
        _n, lo, hi, _spacing = mailserver.bus_lock_bursts
        assert (lo, hi) == (5, 8)  # the paper's bins #5-#8 mode

    def test_webserver_has_loop_pattern(self):
        assert webserver.cache_loop_pattern is not None


class TestBackgroundNoise:
    def test_spawns_default_three(self, small_machine):
        procs = background_noise_processes(small_machine, n_quanta=1)
        assert len(procs) == 3
        assert len({p.ctx for p in procs}) == 3

    def test_avoids_contexts(self, small_machine):
        procs = background_noise_processes(
            small_machine, n_quanta=1, avoid_contexts=(0, 1, 2)
        )
        assert all(p.ctx >= 3 for p in procs)

    def test_too_many_requested(self, small_machine):
        with pytest.raises(ConfigError):
            background_noise_processes(small_machine, n_quanta=1, count=99)

    def test_noise_generates_activity(self, small_machine):
        background_noise_processes(small_machine, n_quanta=2, seed=3)
        small_machine.run_quanta(2)
        total_cache = small_machine.l2.hits + small_machine.l2.misses
        assert total_cache > 0

    def test_custom_profiles(self, small_machine):
        from repro.workloads.base import ActivityProfile

        quiet = (ActivityProfile(name="quiet"),)
        procs = background_noise_processes(
            small_machine, n_quanta=1, count=2, profiles=quiet
        )
        assert all(p.name.startswith("quiet") for p in procs)
