"""Tests for the workload framework."""

import pytest

from repro.errors import ConfigError
from repro.workloads.base import (
    ActivityProfile,
    CacheLoopPattern,
    workload_process,
)


class TestActivityProfile:
    def test_defaults_valid(self):
        profile = ActivityProfile(name="idle")
        assert profile.divider_duty == 0.0

    def test_bad_duty(self):
        with pytest.raises(ConfigError):
            ActivityProfile(name="x", divider_duty=1.5)

    def test_bad_intensity(self):
        with pytest.raises(ConfigError):
            ActivityProfile(name="x", divider_intensity=0.0)

    def test_bad_chunks(self):
        with pytest.raises(ConfigError):
            ActivityProfile(name="x", chunks_per_quantum=0)

    def test_negative_rate(self):
        with pytest.raises(ConfigError):
            ActivityProfile(name="x", bus_lock_rate_per_s=-1)


class TestCacheLoopPattern:
    def test_bad_sizes(self):
        with pytest.raises(ConfigError):
            CacheLoopPattern(ws_sets=0)

    def test_bad_episodes(self):
        with pytest.raises(ConfigError):
            CacheLoopPattern(episodes_per_quantum=0)


class TestWorkloadProcess:
    def test_bus_activity_generated(self, small_machine):
        profile = ActivityProfile(name="busy", bus_lock_rate_per_s=50_000.0)
        proc = workload_process(profile, small_machine, n_quanta=2, seed=1)
        small_machine.spawn(proc, ctx=0)
        small_machine.run_quanta(2)
        assert small_machine.bus_lock_tap.count > 0

    def test_cache_activity_generated(self, small_machine):
        profile = ActivityProfile(name="mem", cache_accesses_per_quantum=200)
        proc = workload_process(profile, small_machine, n_quanta=1, seed=1)
        small_machine.spawn(proc, ctx=0)
        small_machine.run_quanta(1)
        assert small_machine.l2.hits + small_machine.l2.misses >= 190

    def test_divider_usage_registered(self, small_machine):
        profile = ActivityProfile(name="div", divider_duty=0.3)
        proc = workload_process(profile, small_machine, n_quanta=1, seed=1)
        small_machine.spawn(proc, ctx=0)
        small_machine.run_quanta(1)
        unit = small_machine.dividers[0]
        assert 0 in unit._usage and len(unit._usage[0]) > 0

    def test_lock_bursts_clustered(self, small_machine):
        profile = ActivityProfile(
            name="mail", bus_lock_bursts=(3, 5, 8, 1000)
        )
        proc = workload_process(profile, small_machine, n_quanta=1, seed=1)
        small_machine.spawn(proc, ctx=0)
        small_machine.run_quanta(1)
        # Bursts of 5-8 locks each; at least one burst fired.
        assert small_machine.bus_lock_tap.count >= 5

    def test_loop_pattern_touches_shared_region(self, small_machine):
        pattern = CacheLoopPattern(
            ws_sets=8, lines_per_set=2, repeats=1, episodes_per_quantum=10,
            base_set=100, base_jitter=0,
        )
        profile = ActivityProfile(name="web", cache_loop_pattern=pattern)
        proc = workload_process(profile, small_machine, n_quanta=1, seed=1)
        small_machine.spawn(proc, ctx=0)
        small_machine.run_quanta(1)
        touched = [
            s for s in range(100, 108)
            if small_machine.l2.resident_tags(s)
        ]
        assert touched

    def test_bad_quanta(self, small_machine):
        with pytest.raises(ConfigError):
            workload_process(ActivityProfile(name="x"), small_machine, 0)

    def test_deterministic(self, small_machine):
        from repro.sim.machine import Machine
        from repro.config import MachineConfig

        def locks(seed_machine):
            profile = ActivityProfile(name="b", bus_lock_rate_per_s=10_000.0)
            proc = workload_process(profile, seed_machine, 1, seed=5)
            seed_machine.spawn(proc, ctx=0)
            seed_machine.run_quanta(1)
            return seed_machine.bus_lock_tap.times().tolist()

        config = MachineConfig(os_quantum_seconds=0.002)
        assert locks(Machine(config, seed=1)) == locks(Machine(config, seed=1))
