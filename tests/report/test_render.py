"""Tests for the forensic report renderer (SVG charts, HTML, Markdown)."""

import pytest

from repro.obs.evidence import EvidenceBundle, evidence_document
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import MetricsSampler
from repro.report import (
    bar_chart,
    forensic_report_html,
    forensic_report_markdown,
    line_chart,
    render_report,
)


def _burst_doc(registry, detected=True):
    bundle = EvidenceBundle("membus", "burst", metrics=registry)
    bundle.record_lr(0, 0.2)
    bundle.record_lr(1, 0.9)
    bundle._push(
        "histogram_snapshots",
        {
            "quantum": 1,
            "reason": "lr-threshold-rise",
            "likelihood_ratio": 0.9,
            "threshold_bin": 3,
            "hist": [40, 0, 0, 5, 2],
        },
    )
    bundle.cluster_snapshot = {
        "quantum": 1,
        "labels": [0, 1, 0],
        "burst_clusters": [1],
        "burst_window_indices": [1],
        "recurrent": True,
        "aggregate_hist": [40, 0, 0, 5, 2],
    }
    bundle.record_fault(1, "drop:membus")
    bundle.record_health(1, "degraded")
    bundle.record_verdict(1, detected)
    report = {
        "any_detected": detected,
        "health": "degraded",
        "verdicts": [
            {
                "unit": "membus",
                "method": "burst",
                "detected": detected,
                "quanta_analyzed": 2,
                "max_likelihood_ratio": 0.9,
                "recurrent": True,
                "burst_window_fraction": 0.5,
                "oscillating_windows": None,
                "max_peak": None,
                "dominant_period": None,
                "notes": ["evidence degraded"],
                "health": "degraded",
            }
        ],
    }
    return evidence_document(
        {"membus": bundle},
        meta={"channel": "membus", "seed": 7, "report": report},
    )


def _oscillation_doc(registry):
    bundle = EvidenceBundle("cache", "oscillation", metrics=registry)
    bundle.record_peak(0, 0.3)
    bundle.record_peak(1, 0.92)
    bundle._push(
        "acf_windows",
        {
            "quantum": 1,
            "peak_lags": [4, 8],
            "peak_heights": [0.92, 0.88],
            "dominant_period": 4.0,
            "min_dip": -0.4,
            "coverage": 1.0,
            "significant": True,
        },
    )
    bundle.acf_snapshot = {
        "quantum": 1,
        "acf": [1.0, -0.3, 0.1, -0.2, 0.92, 0.0, 0.1, 0.0, 0.88],
        "peak_lags": [4, 8],
        "significant": True,
    }
    bundle.record_verdict(1, True)
    return evidence_document({"cache": bundle}, meta={})


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestSvgPrimitives:
    def test_line_chart_structure(self):
        svg = line_chart(
            [(0, 0.1), (1, 0.9)], threshold=0.5, threshold_label="thr"
        )
        assert svg.startswith("<svg")
        assert "polyline" in svg
        assert 'class="thr"' in svg
        assert "thr" in svg

    def test_line_chart_empty_and_single_point(self):
        assert "no data" in line_chart([])
        svg = line_chart([(0, 1.0)])
        assert "circle" in svg  # single sample degrades to a dot

    def test_line_chart_markers(self):
        svg = line_chart(
            [(0, 0.0), (5, 1.0)], markers=[(5, 1.0)], marker_label="peak"
        )
        assert 'class="dot marker"' in svg

    def test_bar_chart_highlight_and_tooltips(self):
        svg = bar_chart([100, 0, 3, 7], highlight_from=2)
        assert svg.count('class="bar hot"') == 2  # bins 2 and 3
        assert "<title>bin 0: 100</title>" in svg
        assert "log scale" in svg

    def test_bar_chart_empty(self):
        assert "no data" in bar_chart([])

    def test_escaping(self):
        svg = line_chart([(0, 1.0), (1, 2.0)], x_label="<q&a>")
        assert "<q&a>" not in svg
        assert "&lt;q&amp;a&gt;" in svg


class TestHtmlReport:
    def test_self_contained_with_figures(self, registry):
        html = forensic_report_html(_burst_doc(registry))
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "http://" not in html and "https://" not in html
        assert "Likelihood-ratio trajectory" in html
        assert "Density histogram" in html
        assert "CHANNEL LIKELY" in html
        assert "DEGRADED" in html  # health label is text, not just color
        assert "drop:membus" in html
        assert "prefers-color-scheme: dark" in html
        assert "<details>" in html  # raw data stays reachable

    def test_oscillation_figures(self, registry):
        html = forensic_report_html(_oscillation_doc(registry))
        assert "Autocorrelogram" in html
        assert "Correlogram peak trajectory" in html
        assert 'class="dot marker"' in html  # peak markers on the ACF

    def test_clear_unit_badge(self, registry):
        html = forensic_report_html(_burst_doc(registry, detected=False))
        assert "clear" in html
        assert "CHANNEL LIKELY" not in html

    def test_timeseries_section(self, registry):
        gauge = registry.gauge("v", "h")
        sampler = MetricsSampler(registry=registry)
        for quantum in range(3):
            gauge.set(quantum)
            sampler.sample(quantum=quantum)
        html = forensic_report_html(
            _burst_doc(registry), timeseries=sampler.records()
        )
        assert "Metrics time series" in html

    def test_empty_document(self):
        html = forensic_report_html({"format": "x", "units": {}})
        assert "no unit bundles" in html


class TestMarkdownReport:
    def test_structure(self, registry):
        md = forensic_report_markdown(_burst_doc(registry))
        assert md.startswith("# CC-Hunter forensic report")
        assert "## membus (burst) — CHANNEL LIKELY" in md
        assert "| quantum | LR |" in md
        assert "lr-threshold-rise" in md
        assert "drop:membus" in md

    def test_oscillation_tables(self, registry):
        md = forensic_report_markdown(_oscillation_doc(registry))
        assert "Correlogram peak trajectory" in md
        assert "Autocorrelogram peaks" in md
        assert "| 4 | 0.9200 |" in md


class TestRenderDispatch:
    def test_dispatch(self, registry):
        doc = _burst_doc(registry)
        assert render_report(doc, "html").startswith("<!DOCTYPE")
        assert render_report(doc, "md").startswith("#")
        assert render_report(doc, "markdown").startswith("#")
        with pytest.raises(ValueError):
            render_report(doc, "pdf")

    def test_title_propagates(self, registry):
        doc = _burst_doc(registry)
        assert "Custom Title" in render_report(doc, "html", title="Custom Title")
        assert "Custom Title" in render_report(doc, "md", title="Custom Title")
