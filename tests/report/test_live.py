"""Tests for the live watch sink (ANSI redraw vs append fallback)."""

import io

import pytest

from repro.core.report import DetectionReport, UnitVerdict
from repro.report import WatchSink


def _report(detected=False, health="ok"):
    return DetectionReport(
        verdicts=(
            UnitVerdict(
                unit="membus",
                method="burst",
                detected=detected,
                quanta_analyzed=1,
                max_likelihood_ratio=0.42,
                health=health,
            ),
        )
    )


class _Tty(io.StringIO):
    def isatty(self):
        return True


class TestWatchSink:
    def test_non_tty_appends_blocks(self):
        stream = io.StringIO()
        sink = WatchSink(stream=stream)
        assert not sink.sticky
        sink.on_quantum(0, _report())
        sink.on_quantum(1, _report())
        text = stream.getvalue()
        assert "\x1b[" not in text  # no ANSI on a plain stream
        assert text.count("CC-Hunter watch") == 2
        assert "membus" in text and "lr=0.420" in text

    def test_tty_redraws_in_place(self):
        stream = _Tty()
        sink = WatchSink(stream=stream)
        assert sink.sticky
        sink.on_quantum(0, _report())
        sink.on_quantum(1, _report())
        text = stream.getvalue()
        # Second frame erases the first: cursor-up once per drawn line.
        assert text.count("\x1b[F") == 2
        assert "quantum 1" in text

    def test_refresh_every_skips_quanta(self):
        stream = io.StringIO()
        sink = WatchSink(stream=stream, refresh_every=3)
        for quantum in range(6):
            sink.on_quantum(quantum, _report())
        assert stream.getvalue().count("CC-Hunter watch") == 2

    def test_close_renders_final_verdict(self):
        stream = io.StringIO()
        sink = WatchSink(stream=stream)
        sink.on_close(_report(detected=True))
        text = stream.getvalue()
        assert "session closed" in text
        assert "channel activity detected" in text
        assert "LIKELY" in text

    def test_health_annotation(self):
        stream = io.StringIO()
        sink = WatchSink(stream=stream)
        sink.on_quantum(0, _report(health="degraded"))
        assert "[DEGRADED]" in stream.getvalue()

    def test_empty_report(self):
        stream = io.StringIO()
        WatchSink(stream=stream).on_quantum(0, DetectionReport(verdicts=()))
        assert "no audited units" in stream.getvalue()

    def test_invalid_refresh_rejected(self):
        with pytest.raises(ValueError):
            WatchSink(refresh_every=0)
