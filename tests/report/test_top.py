"""``repro top``: fleet rendering, LiveBlock reuse, and the poll loop."""

import asyncio
import io

import pytest

from repro.errors import ServeUnavailableError
from repro.obs.telemetry import TelemetryServer, json_response
from repro.report.live import LiveBlock
from repro.report.top import fetch_tenants, render_fleet, run_top


def tenant_doc(name, burn=0.0, **overrides):
    doc = {
        "tenant": name,
        "connected": True,
        "health": "ok",
        "any_detected": False,
        "received": 10,
        "shed": 0,
        "lost": 0,
        "coalesced": 0,
        "slo": {
            "alerts_total": 0,
            "firing": [],
            "max_burn_rate": burn,
            "objectives": {},
        },
    }
    doc.update(overrides)
    return doc


def fleet_doc(*tenants, draining=False):
    return {
        "format": "repro.serve.tenants/v1",
        "draining": draining,
        "tenants": list(tenants),
    }


class TestRenderFleet:
    def test_sorted_by_burn_rate_desc(self):
        lines = render_fleet(fleet_doc(
            tenant_doc("calm", burn=0.1),
            tenant_doc("onfire", burn=9.0),
            tenant_doc("warm", burn=2.0),
        ))
        order = [line.split()[0] for line in lines[2:]]
        assert order == ["onfire", "warm", "calm"]
        assert "3 tenant(s), serving" in lines[0]

    def test_flags_column(self):
        detected = tenant_doc("d", any_detected=True)
        firing = tenant_doc("f")
        firing["slo"]["firing"] = [
            {"rule": "fast_burn", "objective": "shed"}
        ]
        idle = tenant_doc("i", connected=False)
        plain = tenant_doc("p")
        lines = render_fleet(fleet_doc(detected, firing, idle, plain))
        rows = {line.split()[0]: line for line in lines[2:]}
        assert rows["d"].rstrip().endswith("DETECTED")
        assert rows["f"].rstrip().endswith("fast_burn:shed")
        assert rows["i"].rstrip().endswith("idle")
        assert rows["p"].rstrip().endswith("-")

    def test_empty_fleet_and_draining(self):
        lines = render_fleet(fleet_doc(draining=True))
        assert "0 tenant(s), draining" in lines[0]
        assert lines[-1] == "  (no tenants)"


class TestLiveBlock:
    def test_non_tty_appends(self):
        stream = io.StringIO()
        block = LiveBlock(stream)
        assert not block.sticky
        block.draw(["a", "b"])
        block.draw(["c"])
        assert stream.getvalue() == "a\nb\nc\n"
        assert "\x1b[" not in stream.getvalue()

    def test_sticky_redraws_in_place(self):
        stream = io.StringIO()
        block = LiveBlock(stream, sticky=True)
        block.draw(["a", "b"])
        block.draw(["c", "d"])
        out = stream.getvalue()
        # Second draw erased the first two lines before writing.
        assert out.count("\x1b[F\x1b[2K") == 2
        assert out.endswith("c\nd\n")

    def test_release_keeps_block(self):
        stream = io.StringIO()
        block = LiveBlock(stream, sticky=True)
        block.draw(["a"])
        block.release()
        block.draw(["b"])
        assert "\x1b[F" not in stream.getvalue().split("a\n", 1)[1]


def serve_fleet(docs):
    """A stub admin endpoint replaying one /tenants doc per poll."""
    state = {"polls": 0}
    server = TelemetryServer()

    def handler():
        doc = docs[min(state["polls"], len(docs) - 1)]
        state["polls"] += 1
        return json_response(doc)

    server.route("/tenants", handler)
    return server


class TestRunTop:
    def test_polls_and_renders(self):
        async def scenario():
            server = serve_fleet([
                fleet_doc(tenant_doc("alpha", burn=1.5)),
                fleet_doc(
                    tenant_doc("alpha", burn=1.5),
                    tenant_doc("beta"),
                ),
            ])
            host, port = await server.start()
            stream = io.StringIO()
            try:
                polls = await run_top(
                    host, port, interval=0.01, iterations=2,
                    stream=stream,
                )
            finally:
                await server.stop()
            return polls, stream.getvalue()

        polls, out = asyncio.run(scenario())
        assert polls == 2
        assert "alpha" in out and "beta" in out
        assert "TENANT" in out and "BURN" in out

    def test_first_poll_failure_raises(self):
        async def scenario():
            server = TelemetryServer()
            host, port = await server.start()
            await server.stop()  # nothing listening anymore
            await run_top(host, port, iterations=1)

        with pytest.raises(ServeUnavailableError):
            asyncio.run(scenario())

    def test_mid_loop_failure_draws_went_away(self):
        async def scenario():
            server = serve_fleet([fleet_doc(tenant_doc("t"))])
            host, port = await server.start()
            stream = io.StringIO()

            async def stopper():
                await asyncio.sleep(0.05)
                await server.stop()

            task = asyncio.create_task(stopper())
            polls = await run_top(
                host, port, interval=0.02, iterations=50, stream=stream
            )
            await task
            return polls, stream.getvalue()

        polls, out = asyncio.run(scenario())
        assert 1 <= polls < 50
        assert "went away" in out

    def test_fetch_tenants_rejects_non_200(self):
        async def scenario():
            server = TelemetryServer()  # no /tenants route -> 404
            host, port = await server.start()
            try:
                await fetch_tenants(host, port)
            finally:
                await server.stop()

        with pytest.raises(ServeUnavailableError, match="404"):
            asyncio.run(scenario())
