"""Tests for post-detection mitigations: each one defeats its channel."""

import pytest

from repro.channels.base import ChannelConfig
from repro.channels.cache import CacheCovertChannel
from repro.channels.membus import MemoryBusCovertChannel
from repro.errors import ConfigError
from repro.mitigation import (
    apply_bus_lock_throttle,
    apply_clock_fuzzing,
    partition_cache_ways,
)
from repro.sim.machine import Machine
from repro.util.bitstream import Message


MSG = Message.from_bits([1, 0, 1, 1, 0, 0, 1, 0])


def run_bus_channel(machine, bandwidth=1000.0):
    channel = MemoryBusCovertChannel(
        machine, ChannelConfig(message=MSG, bandwidth_bps=bandwidth)
    )
    channel.deploy(trojan_ctx=0, spy_ctx=2)
    machine.run_until(channel.transmission_end + 1)
    return channel


def run_cache_channel(machine, bandwidth=500.0):
    channel = CacheCovertChannel(
        machine, ChannelConfig(message=MSG, bandwidth_bps=bandwidth),
        n_sets_total=32,
    )
    channel.deploy()
    machine.run_until(channel.transmission_end + 1)
    return channel


class TestBusLockThrottle:
    def test_throttle_caps_lock_density(self):
        machine = Machine(seed=5)
        apply_bus_lock_throttle(machine, min_period=100_000)
        channel = run_bus_channel(machine)
        counts = machine.bus_lock_tap.density_counts(
            100_000, 0, channel.transmission_end
        )
        assert counts.max() <= 2  # vs ~20 unthrottled

    def test_throttle_breaks_decode(self):
        machine = Machine(seed=5)
        apply_bus_lock_throttle(machine, min_period=100_000)
        channel = run_bus_channel(machine)
        # Locks now cover only a sliver of each '1' bit: the spy's
        # averaged latency no longer clears the threshold.
        assert channel.bit_error_rate() > 0.2

    def test_unthrottled_contexts_unaffected(self):
        machine = Machine(seed=5)
        throttle = apply_bus_lock_throttle(
            machine, min_period=100_000, contexts={7}
        )
        channel = run_bus_channel(machine)
        assert channel.bit_error_rate() == 0.0
        assert throttle.locks_delayed == 0

    def test_remove_restores(self):
        machine = Machine(seed=5)
        throttle = apply_bus_lock_throttle(machine, min_period=100_000)
        throttle.remove()
        channel = run_bus_channel(machine)
        assert channel.bit_error_rate() == 0.0

    def test_bad_period(self):
        with pytest.raises(ConfigError):
            apply_bus_lock_throttle(Machine(seed=1), min_period=0)

    def test_benign_rates_untouched(self):
        """Benign noise locks are far sparser than the cap; the throttle
        must not delay them."""
        throttle = apply_bus_lock_throttle(Machine(seed=1))
        assert throttle.effective_max_lock_rate >= 1 / 100_000


class TestCachePartition:
    def test_partition_silences_channel(self):
        machine = Machine(seed=6)
        baseline_machine = Machine(seed=6)
        baseline = run_cache_channel(baseline_machine)
        assert baseline_machine.cache_miss_tap.count > 100

        partition_cache_ways(machine, suspect_contexts=(0, 2))
        channel = run_cache_channel(machine)
        # No cross-group evictions -> no trojan/spy conflict events.
        _, reps, vics = machine.cache_miss_tap.records()
        pair_events = (
            ((reps == 0) & (vics == 2)) | ((reps == 2) & (vics == 0))
        ).sum()
        assert pair_events < baseline_machine.cache_miss_tap.count * 0.05

    def test_partition_breaks_decode(self):
        machine = Machine(seed=6)
        partition_cache_ways(machine, suspect_contexts=(0, 2))
        channel = run_cache_channel(machine)
        assert channel.bit_error_rate() > 0.2

    def test_way_budget_validation(self):
        with pytest.raises(ConfigError):
            partition_cache_ways(Machine(seed=1), (0,), suspect_ways=8)
        with pytest.raises(ConfigError):
            partition_cache_ways(Machine(seed=1), ())

    def test_suspects_in_separate_groups(self):
        machine = Machine(seed=1)
        partition = partition_cache_ways(machine, suspect_contexts=(0, 2))
        assert partition.group_of_ctx[0] != partition.group_of_ctx[2]
        assert partition.group_of_ctx[1] == partition.group_of_ctx[3]

    def test_remove_restores(self):
        machine = Machine(seed=6)
        partition = partition_cache_ways(machine, suspect_contexts=(0, 2))
        partition.remove()
        channel = run_cache_channel(machine)
        assert channel.bit_error_rate() <= 1 / 8  # cold-start bit only


class TestClockFuzzing:
    def test_fuzz_degrades_bus_decode(self):
        machine = Machine(seed=7)
        apply_clock_fuzzing(machine, fuzz_cycles=3000)
        channel = run_bus_channel(machine)
        assert channel.bit_error_rate() > 0.1

    def test_small_fuzz_harmless(self):
        machine = Machine(seed=7)
        apply_clock_fuzzing(machine, fuzz_cycles=10)
        channel = run_bus_channel(machine)
        assert channel.bit_error_rate() == 0.0

    def test_remove_restores(self):
        machine = Machine(seed=7)
        fuzzer = apply_clock_fuzzing(machine, fuzz_cycles=3000)
        fuzzer.remove()
        channel = run_bus_channel(machine)
        assert channel.bit_error_rate() == 0.0

    def test_ber_floor_estimate_monotone(self):
        machine = Machine(seed=7)
        fuzzer = apply_clock_fuzzing(machine, fuzz_cycles=800)
        weak = fuzzer.expected_ber_floor(latency_gap=50, samples_per_bit=10)
        strong = fuzzer.expected_ber_floor(latency_gap=500, samples_per_bit=10)
        assert 0 <= strong < weak <= 0.5

    def test_bad_amplitude(self):
        with pytest.raises(ConfigError):
            apply_clock_fuzzing(Machine(seed=1), fuzz_cycles=0)
