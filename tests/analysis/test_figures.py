"""Tests for the figure experiment drivers (small, fast configurations)."""

import pytest

from repro.analysis import figures as F
from repro.errors import ReproError
from repro.util.bitstream import Message


class TestRunChannelSession:
    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            F.run_channel_session("gpu", Message.random(4, 1))

    def test_session_covers_transmission(self):
        run = F.run_channel_session(
            "membus", Message.random(4, 1), bandwidth_bps=100.0, noise=False
        )
        assert run.quanta >= 1
        assert run.channel.decoded_bits

    def test_max_quanta_cap(self):
        run = F.run_channel_session(
            "membus", Message.random(16, 1), bandwidth_bps=10.0,
            max_quanta=2, noise=False,
        )
        assert run.quanta == 2


class TestLatencyFigures:
    def test_fig2_separation(self):
        result = F.fig2_membus_latency(n_bits=8, bandwidth_bps=100.0)
        assert result.ber == 0.0
        assert result.separation > 50

    def test_fig3_separation(self):
        result = F.fig3_divider_latency(n_bits=8, bandwidth_bps=100.0)
        assert result.ber == 0.0
        assert result.mean_when_one > result.mean_when_zero


class TestTrainFigures:
    def test_fig4_bursts_in_one_bits(self):
        result = F.fig4_event_trains(n_bits=6, bandwidth_bps=100.0)
        bit_period = 25_000_000
        assert result.burst_fraction(result.bus_times, bit_period) > 0.9

    def test_fig5_second_mode(self):
        result = F.fig5_methodology()
        # Poisson reference explains the head but not the injected bursts.
        assert result.histogram[0] > 0
        assert result.histogram[10:].sum() > 0
        assert result.poisson_reference[15:].sum() < 1.0


class TestHistogramFigures:
    def test_fig6_burst_bins_near_paper(self):
        result = F.fig6_density_histograms(n_bits=6)
        assert 18 <= result.bus_burst_bin <= 22
        assert 84 <= result.divider_burst_bin <= 105
        assert result.bus_analysis.likelihood_ratio > 0.9
        assert result.divider_analysis.likelihood_ratio > 0.9


class TestCacheFigures:
    def test_fig7_ratio_decode(self):
        result = F.fig7_cache_ratios(n_bits=8, bandwidth_bps=500.0, n_sets=32)
        assert result.ber <= 1 / 8  # cold-start bit may flip
        assert result.mean_ratio_ones > 1.0
        assert result.mean_ratio_zeros < 1.0

    def test_fig8_peak_at_set_count(self):
        result = F.fig8_cache_autocorrelogram(
            n_bits=8, bandwidth_bps=500.0, n_sets=64, max_lag=400
        )
        assert result.analysis.significant
        assert 60 <= result.peak_lag <= 80
        assert result.peak_value > 0.7

    def test_fig13_wavelength_tracks_sets(self):
        results = F.fig13_cache_set_sweep(
            set_counts=(64, 32), bandwidth_bps=1000.0, n_bits=6
        )
        for result in results:
            assert result.peak_lag >= result.n_sets
            assert result.peak_lag <= result.n_sets * 1.4


class TestSweeps:
    def test_fig10_burst_channels_high_lr(self):
        points = F.fig10_bandwidth_sweep(
            bandwidths=(10.0,), n_bits=6, cache_sets=32
        )
        by_kind = {p.kind: p for p in points}
        assert by_kind["membus"].likelihood_ratio > 0.9
        assert by_kind["divider"].likelihood_ratio > 0.9
        assert by_kind["membus"].detected
        assert by_kind["divider"].detected
        assert by_kind["cache"].detected

    def test_fig12_message_patterns_stable(self):
        results = F.fig12_message_sweep(
            n_messages=3, n_bits=6, kinds=("membus",)
        )
        assert results[0].min_likelihood_ratio > 0.9
        assert (results[0].max_hist >= results[0].min_hist).all()

    def test_message_with_ones(self):
        msg = F._message_with_ones(4, seed=0)
        assert msg.ones >= 2


class TestFalseAlarms:
    def test_no_alarms_on_benign_pairs(self):
        from repro.workloads.spec import gobmk, sjeng

        results = F.fig14_false_alarms(
            pairs=[(gobmk, sjeng)], n_quanta=3
        )
        assert len(results) == 1
        assert not results[0].any_alarm

    def test_detection_summary(self):
        summary = F.detection_summary(n_bits=6, n_quanta_benign=2)
        assert summary.all_detected
        assert summary.false_alarms == 0
        assert summary.pairs_tested == 5


class TestWindowFractionPlumbing:
    def test_fractional_windows_in_session(self):
        run = F.run_channel_session(
            "cache", Message.random(6, 2), bandwidth_bps=500.0, seed=2,
            n_sets_total=32, window_fraction=0.25, noise=False,
        )
        verdict = run.hunter.report().verdicts[0]
        # Four analysis windows per quantum.
        assert verdict.quanta_analyzed == run.quanta * 4
        assert verdict.detected

    def test_aggregate_histogram_sums_quanta(self):
        run = F.run_channel_session(
            "membus", Message.random(20, 2), bandwidth_bps=100.0, seed=2,
            noise=False,
        )
        from repro.core.detector import AuditUnit

        per_quantum = run.hunter.burst_histograms(AuditUnit.MEMORY_BUS)
        aggregate = F.aggregate_histogram(run.hunter, AuditUnit.MEMORY_BUS)
        assert aggregate.sum() == sum(h.sum() for h in per_quantum)
