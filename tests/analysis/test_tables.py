"""Tests for Table I generation."""

import pytest

from repro.analysis.tables import table1_rows, table1_text


class TestTable1:
    def test_rows_match_paper(self):
        rows = {name: (a, p, l) for name, a, p, l in table1_rows()}
        assert rows["histogram_buffers"] == pytest.approx((0.0028, 2.8, 0.17))
        assert rows["registers"] == pytest.approx((0.0011, 0.8, 0.17))
        assert rows["conflict_miss_detector"] == pytest.approx(
            (0.004, 5.4, 0.12)
        )

    def test_row_order(self):
        names = [name for name, *_ in table1_rows()]
        assert names == [
            "histogram_buffers", "registers", "conflict_miss_detector",
        ]

    def test_text_rendering(self):
        text = table1_text()
        assert "Table I" in text
        assert "0.0028" in text
        assert "i7" in text
