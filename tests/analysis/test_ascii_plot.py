"""Tests for terminal plot rendering."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import (
    render_correlogram,
    render_event_train,
    render_histogram,
    render_series,
)
from repro.errors import DetectionError


class TestHistogram:
    def test_contains_metadata(self):
        hist = np.zeros(128)
        hist[0] = 1000
        hist[20] = 50
        text = render_histogram(hist, title="bus")
        assert "bus" in text
        assert "bin0=1000" in text
        assert "last nonzero bin=20" in text

    def test_empty_raises(self):
        with pytest.raises(DetectionError):
            render_histogram([])

    def test_all_zero_renders(self):
        assert "bin0=0" in render_histogram(np.zeros(8))


class TestCorrelogram:
    def test_renders_rows_and_markers(self):
        acf = np.cos(np.linspace(0, 20, 500))
        text = render_correlogram(acf, title="cache", marker_lags=[128])
        assert "cache" in text
        assert "peaks at [128]" in text
        assert text.count("|") >= 8  # four level rows

    def test_too_short_raises(self):
        with pytest.raises(DetectionError):
            render_correlogram([1.0])


class TestEventTrain:
    def test_counts_events_in_window(self):
        text = render_event_train(np.arange(0, 1000, 10), 0, 500)
        assert "50 events" in text

    def test_empty_window_raises(self):
        with pytest.raises(DetectionError):
            render_event_train([1, 2], 5, 5)


class TestSeries:
    def test_min_max_reported(self):
        text = render_series(np.array([1.0, 5.0, 3.0] * 10))
        assert "min=" in text
        assert "max=" in text

    def test_empty_raises(self):
        with pytest.raises(DetectionError):
            render_series([])
