"""Tests for TCSEC bandwidth assessment."""

import pytest

from repro.analysis.capacity import (
    FEASIBILITY_FLOOR_BPS,
    HIGH_BANDWIDTH_BPS,
    TcsecClass,
    assess_channel,
    binary_entropy,
    bsc_capacity,
    classify_bandwidth,
)
from repro.errors import DetectionError


class TestClassification:
    def test_high(self):
        assert classify_bandwidth(1000.0) is TcsecClass.HIGH

    def test_okamura_channel_is_moderate(self):
        # The paper cites Okamura et al.'s 0.49 bps memory channel.
        assert classify_bandwidth(0.49) is TcsecClass.MODERATE

    def test_ristenpart_channel_is_moderate(self):
        # ...and Ristenpart et al.'s 0.2 bps EC2 channel.
        assert classify_bandwidth(0.2) is TcsecClass.MODERATE

    def test_below_floor_infeasible(self):
        assert classify_bandwidth(0.01) is TcsecClass.INFEASIBLE

    def test_boundaries(self):
        assert classify_bandwidth(HIGH_BANDWIDTH_BPS) is TcsecClass.MODERATE
        assert (
            classify_bandwidth(FEASIBILITY_FLOOR_BPS) is TcsecClass.MODERATE
        )

    def test_negative_rejected(self):
        with pytest.raises(DetectionError):
            classify_bandwidth(-1.0)


class TestEntropyAndCapacity:
    def test_entropy_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == 1.0

    def test_entropy_symmetry(self):
        assert binary_entropy(0.1) == pytest.approx(binary_entropy(0.9))

    def test_entropy_bounds(self):
        with pytest.raises(DetectionError):
            binary_entropy(1.5)

    def test_capacity_perfect_channel(self):
        assert bsc_capacity(0.0) == 1.0

    def test_capacity_useless_channel(self):
        assert bsc_capacity(0.5) == pytest.approx(0.0)

    def test_capacity_monotone(self):
        assert bsc_capacity(0.05) > bsc_capacity(0.2) > bsc_capacity(0.4)


class TestAssessment:
    def test_clean_fast_channel_is_high(self):
        assessment = assess_channel(1000.0, ber=0.0)
        assert assessment.tcsec_class is TcsecClass.HIGH
        assert assessment.effective_bandwidth_bps == 1000.0

    def test_fuzzing_downgrades_class(self):
        """A 1000 bps channel driven to BER 0.45 carries < 10 bps."""
        assessment = assess_channel(1000.0, ber=0.45)
        assert assessment.effective_bandwidth_bps < 10.0
        assert assessment.tcsec_class is TcsecClass.MODERATE

    def test_coinflip_ber_zero_effective(self):
        assessment = assess_channel(10.0, ber=0.5)
        assert assessment.effective_bandwidth_bps == pytest.approx(0.0)
        assert assessment.tcsec_class is TcsecClass.INFEASIBLE

    def test_ber_above_half_clamped(self):
        assessment = assess_channel(10.0, ber=0.9)
        assert assessment.effective_bandwidth_bps == pytest.approx(0.0)

    def test_summary_mentions_class(self):
        assert "high" in assess_channel(500.0, 0.0).summary()

    def test_bad_bandwidth(self):
        with pytest.raises(DetectionError):
            assess_channel(0.0, 0.1)
