"""Tests for the fault injectors: determinism, targeting, semantics."""

import numpy as np
import pytest

from repro.faults import (
    BitFlipInjector,
    DropInjector,
    DuplicateInjector,
    FaultInjectingSource,
    ReorderInjector,
    SaturateInjector,
    StallInjector,
    apply_injectors,
    injectors_from_string,
)
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.source import ConflictRecords, QuantumObservation


def _obs(quantum, counts=None, conflicts=None, width=1000):
    return QuantumObservation(
        quantum=quantum,
        t0=quantum * width,
        t1=(quantum + 1) * width,
        counts=counts or {},
        conflicts=conflicts,
    )


def _burst_obs(quantum, seed=0, n=64, channels=("membus",)):
    rng = np.random.default_rng(seed + quantum)
    return _obs(quantum, counts={
        name: rng.integers(0, 50, size=n).astype(np.int64)
        for name in channels
    })


def _conflict_obs(quantum, seed=0, n=40):
    rng = np.random.default_rng(seed + quantum)
    times = np.sort(rng.integers(0, 1000, size=n)) + quantum * 1000
    return _obs(quantum, conflicts=ConflictRecords(
        times=times.astype(np.int64),
        replacers=rng.integers(0, 4, size=n).astype(np.int64),
        victims=rng.integers(0, 4, size=n).astype(np.int64),
    ))


def _stream(injector_text, seed, quanta=12):
    injectors = injectors_from_string(injector_text, seed=seed)
    return [
        apply_injectors(injectors, _burst_obs(q, seed=7)) for q in range(quanta)
    ]


class TestDeterminism:
    @pytest.mark.parametrize("text", [
        "drop:0.3", "dup:0.2", "reorder:8", "stall:0.1:4",
        "bitflip:0.05", "saturate:0.1", "drop:0.2,dup:0.1,bitflip:0.01",
    ])
    def test_same_seed_replays_bit_for_bit(self, text):
        first = _stream(text, seed=5)
        second = _stream(text, seed=5)
        for a, b in zip(first, second):
            assert a.faults == b.faults
            for name in a.counts:
                np.testing.assert_array_equal(a.counts[name], b.counts[name])

    def test_different_seeds_differ(self):
        first = _stream("drop:0.5", seed=1)
        second = _stream("drop:0.5", seed=2)
        assert any(
            not np.array_equal(a.counts["membus"], b.counts["membus"])
            for a, b in zip(first, second)
        )

    def test_conflict_path_is_deterministic(self):
        for _ in range(2):
            injectors = injectors_from_string("drop:0.4", seed=3)
            outs = [
                apply_injectors(injectors, _conflict_obs(q)) for q in range(6)
            ]
            times = np.concatenate([o.conflicts.times for o in outs])
            if _ == 0:
                baseline = times
            else:
                np.testing.assert_array_equal(times, baseline)


class TestSemantics:
    def test_original_observation_never_mutated(self):
        obs = _burst_obs(0)
        pristine = obs.counts["membus"].copy()
        apply_injectors(injectors_from_string("drop:0.9,bitflip:0.5"), obs)
        np.testing.assert_array_equal(obs.counts["membus"], pristine)
        assert obs.faults == ()

    def test_drop_only_removes_events(self):
        obs = _burst_obs(0)
        out = DropInjector(0.5, seed=1).apply(obs)
        assert out.counts["membus"].sum() < obs.counts["membus"].sum()
        assert np.all(out.counts["membus"] >= 0)
        assert "drop:membus" in out.faults

    def test_dup_only_adds_events(self):
        obs = _burst_obs(0)
        out = DuplicateInjector(0.5, seed=1).apply(obs)
        assert out.counts["membus"].sum() > obs.counts["membus"].sum()
        assert np.all(out.counts["membus"] >= obs.counts["membus"])

    def test_reorder_preserves_event_totals(self):
        obs = _burst_obs(0)
        out = ReorderInjector(8, seed=1).apply(obs)
        assert out.counts["membus"].sum() == obs.counts["membus"].sum()
        assert not np.array_equal(out.counts["membus"], obs.counts["membus"])

    def test_reorder_keeps_conflict_times_sorted(self):
        obs = _conflict_obs(0)
        out = ReorderInjector(8, seed=1).apply(obs)
        np.testing.assert_array_equal(out.conflicts.times, obs.conflicts.times)
        assert not (
            np.array_equal(out.conflicts.replacers, obs.conflicts.replacers)
            and np.array_equal(out.conflicts.victims, obs.conflicts.victims)
        )

    def test_stall_zeroes_contiguous_runs(self):
        obs = _obs(0, counts={"membus": np.full(64, 5, dtype=np.int64)})
        out = StallInjector(0.2, max_len=4, seed=1).apply(obs)
        assert (out.counts["membus"] == 0).any()
        kept = out.counts["membus"] != 0
        assert np.all(out.counts["membus"][kept] == 5)

    def test_saturate_pins_to_entry_max(self):
        obs = _burst_obs(0)
        out = SaturateInjector(0.3, seed=1).apply(obs)
        pinned = out.counts["membus"] == SaturateInjector.SATURATED
        assert pinned.any()

    def test_bitflip_changes_values_not_length(self):
        obs = _burst_obs(0)
        out = BitFlipInjector(0.3, seed=1).apply(obs)
        assert out.counts["membus"].size == obs.counts["membus"].size
        assert not np.array_equal(out.counts["membus"], obs.counts["membus"])

    def test_channel_targeting(self):
        obs = _burst_obs(0, channels=("membus", "divider"))
        out = DropInjector(0.9, channel="membus", seed=1).apply(obs)
        np.testing.assert_array_equal(
            out.counts["divider"], obs.counts["divider"]
        )
        assert out.faults == ("drop:membus",)
        assert out.faults_for("divider") == ()
        assert out.faults_for("membus") == ("drop:membus",)

    def test_untouched_observation_returned_unchanged(self):
        obs = _burst_obs(0)
        out = DropInjector(0.0, seed=1).apply(obs)
        assert out is obs


class TestFaultInjectingSource:
    class _Inner:
        quantum_cycles = 1000

        def __init__(self):
            self.consumers = []

        def channels(self):
            return ()

        def subscribe(self, consumer):
            self.consumers.append(consumer)

        def emit(self, obs):
            for consumer in self.consumers:
                consumer.push_quantum(obs)

    class _Collector:
        def __init__(self):
            self.seen = []

        def push_quantum(self, obs):
            self.seen.append(obs)

    def test_wraps_and_tags(self):
        inner = self._Inner()
        metrics = MetricsRegistry()
        source = FaultInjectingSource(
            inner, injectors_from_string("drop:0.5", seed=1), metrics=metrics
        )
        sink = self._Collector()
        source.subscribe(sink)
        for q in range(8):
            inner.emit(_burst_obs(q))
        assert len(sink.seen) == 8
        assert any(obs.faults for obs in sink.seen)
        snapshot = metrics.to_dict()["metrics"]
        assert snapshot["cchunter_fault_quanta_total"]["series"][0]["value"] > 0
        assert (
            snapshot["cchunter_fault_events_dropped_total"]["series"][0]["value"]
            > 0
        )

    def test_no_injectors_passes_through(self):
        inner = self._Inner()
        source = FaultInjectingSource(inner, [])
        sink = self._Collector()
        source.subscribe(sink)
        obs = _burst_obs(0)
        inner.emit(obs)
        assert sink.seen[0] is obs
