"""FlakyFrameLink: spec parsing, determinism, clause composition."""

import pytest

from repro.errors import FaultSpecError
from repro.faults.wire import FlakyFrameLink, build_link, parse_link_spec


class TestSpecParsing:
    def test_known_kinds(self):
        clauses = parse_link_spec("drop:0.2,garbage:0.05,stall:0.1:0.02")
        assert [c.kind for c in clauses] == ["drop", "garbage", "stall"]
        assert clauses[2].stall_seconds == pytest.approx(0.02)

    def test_stall_default_seconds(self):
        (clause,) = parse_link_spec("stall:0.5")
        assert clause.stall_seconds == pytest.approx(0.05)

    def test_unknown_kind(self):
        with pytest.raises(FaultSpecError, match="unknown frame fault"):
            parse_link_spec("teleport:0.5")

    def test_bad_probability(self):
        with pytest.raises(FaultSpecError, match="not a number"):
            parse_link_spec("drop:maybe")
        with pytest.raises(FaultSpecError, match=r"\[0, 1\]"):
            parse_link_spec("drop:1.5")

    def test_empty_spec(self):
        with pytest.raises(FaultSpecError, match="empty"):
            parse_link_spec("  ,  ")

    def test_negative_stall_seconds(self):
        with pytest.raises(FaultSpecError, match=">= 0"):
            parse_link_spec("stall:0.1:-1")

    def test_extra_params(self):
        with pytest.raises(FaultSpecError, match="exactly one"):
            parse_link_spec("drop:0.1:0.2")

    def test_build_link_none_for_empty(self):
        assert build_link(None) is None
        assert build_link("   ") is None
        assert build_link("drop:0.1") is not None


class TestDeterminism:
    def test_same_seed_same_fate(self):
        a = FlakyFrameLink("drop:0.3,garbage:0.2,stall:0.1", seed=5)
        b = FlakyFrameLink("drop:0.3,garbage:0.2,stall:0.1", seed=5)
        fates_a = [a.action() for _ in range(200)]
        fates_b = [b.action() for _ in range(200)]
        assert fates_a == fates_b
        assert (a.dropped, a.garbled, a.stalled) == (
            b.dropped, b.garbled, b.stalled,
        )

    def test_different_seed_different_fate(self):
        a = FlakyFrameLink("drop:0.5", seed=1)
        b = FlakyFrameLink("drop:0.5", seed=2)
        assert [x.drop for x in (a.action() for _ in range(100))] != [
            x.drop for x in (b.action() for _ in range(100))
        ]

    def test_rates_roughly_honored(self):
        link = FlakyFrameLink("drop:0.25", seed=3)
        for _ in range(2000):
            link.action()
        assert 0.18 < link.dropped / 2000 < 0.32

    def test_drop_wins_over_garbage(self):
        link = FlakyFrameLink("drop:1.0,garbage:1.0", seed=0)
        action = link.action()
        assert action.drop and not action.garbage
        assert link.garbled == 0
