"""Tests for the --inject spec mini-language."""

import pytest

from repro.errors import FaultSpecError
from repro.faults import (
    BitFlipInjector,
    DropInjector,
    DuplicateInjector,
    ReorderInjector,
    SaturateInjector,
    StallInjector,
    build_injectors,
    injectors_from_string,
    parse_inject_spec,
    parse_inject_specs,
)


class TestParsing:
    def test_kind_and_probability(self):
        spec = parse_inject_spec("drop:0.30")
        assert spec.kind == "drop"
        assert spec.params == ("0.30",)
        assert spec.channel == "*"

    def test_channel_target(self):
        spec = parse_inject_spec("drop:0.05@membus")
        assert spec.channel == "membus"
        assert str(spec) == "drop:0.05@membus"

    def test_composed_specs_preserve_order(self):
        specs = parse_inject_specs("drop:0.1, dup:0.05@cache ,stall:0.01:4")
        assert [s.kind for s in specs] == ["drop", "dup", "stall"]
        assert specs[1].channel == "cache"
        assert specs[2].params == ("0.01", "4")

    def test_case_insensitive_kind(self):
        assert parse_inject_spec("DROP:0.1").kind == "drop"

    @pytest.mark.parametrize("bad", [
        "", "   ", "warp:0.1", "drop", "drop:1.5", "drop:-0.1",
        "drop:abc", "drop:0.1:2", "drop:0.1@", "reorder:0",
        "reorder:1.5", "stall:0.1:0", "bitflip:0.1:0",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            injectors_from_string(bad)

    def test_unknown_kind_names_the_known_ones(self):
        with pytest.raises(FaultSpecError, match="drop"):
            parse_inject_spec("warp:0.1")


class TestBuilding:
    def test_every_kind_builds(self):
        injectors = injectors_from_string(
            "drop:0.1,dup:0.1,reorder:4,stall:0.1:8,bitflip:0.01:12,"
            "saturate:0.02"
        )
        assert [type(i) for i in injectors] == [
            DropInjector, DuplicateInjector, ReorderInjector,
            StallInjector, BitFlipInjector, SaturateInjector,
        ]

    def test_defaults_fill_optional_params(self):
        stall, flip = injectors_from_string("stall:0.1,bitflip:0.01")
        assert stall.max_len == 16
        assert flip.bit_width == 16

    def test_seed_flows_into_streams(self):
        a = build_injectors(parse_inject_specs("drop:0.5"), seed=1)[0]
        b = build_injectors(parse_inject_specs("drop:0.5"), seed=1)[0]
        c = build_injectors(parse_inject_specs("drop:0.5"), seed=2)[0]
        assert a.rng.random() == b.rng.random()
        assert a.rng.random() != c.rng.random()

    def test_clause_index_separates_identical_specs(self):
        first, second = injectors_from_string("drop:0.5,drop:0.5", seed=1)
        assert first.rng.random() != second.rng.random()
