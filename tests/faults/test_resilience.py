"""End-to-end resilience: faulted sessions degrade, never die.

The acceptance drills for the fault-injection framework: a heavily
faulted live session completes with DEGRADED health and a full report;
with injectors disabled, verdicts are bit-identical to an unwrapped
run; archive corruption is caught by the checksum manifest and can be
degraded around.
"""

import pytest

from repro.analysis.figures import run_channel_session
from repro.faults import corrupt_archive, injectors_from_string
from repro.traces import analyze_traces, export_traces, load_traces
from repro.util.bitstream import Message

pytestmark = pytest.mark.resilience


def _membus_run(injectors=(), seed=6):
    message = Message.from_bits([1, 0] * 12)
    return run_channel_session(
        "membus", message, bandwidth_bps=100.0, seed=seed,
        injectors=injectors,
    )


class TestGracefulDegradation:
    def test_heavy_drop_completes_degraded(self):
        """drop:0.30 on the Fig. 6 bus channel: DEGRADED, no exception."""
        run = _membus_run(injectors_from_string("drop:0.30", seed=6))
        report = run.hunter.report()
        assert report.health == "degraded"
        verdict = report.verdicts[0]
        assert verdict.quanta_analyzed == run.quanta
        assert any("fault" in note for note in verdict.notes)

    def test_every_injector_kind_survives_a_session(self):
        for text in ("dup:0.2", "reorder:8", "stall:0.1:4",
                     "bitflip:0.05", "saturate:0.1",
                     "drop:0.2,dup:0.1,bitflip:0.01"):
            run = _membus_run(injectors_from_string(text, seed=6))
            report = run.hunter.report()
            assert report.health == "degraded", text
            assert report.verdicts[0].quanta_analyzed == run.quanta, text

    def test_injectors_off_is_bit_identical(self):
        """The wrapper with no injectors must not perturb verdicts."""
        plain = _membus_run().hunter.report()
        wrapped = _membus_run(injectors=()).hunter.report()
        assert plain.verdicts == wrapped.verdicts
        assert plain.health == "ok"

    def test_faulted_replay_degrades_offline_too(self, tmp_path):
        run = _membus_run()
        archive = export_traces(run.machine, tmp_path / "s.npz")
        report = analyze_traces(
            archive, injectors=injectors_from_string("drop:0.30", seed=1)
        )
        assert report.health == "degraded"
        clean = analyze_traces(archive)
        assert clean.health == "ok"


class TestArchiveCorruption:
    def _archive(self, tmp_path):
        run = _membus_run()
        export_traces(run.machine, tmp_path / "s.npz")
        return tmp_path / "s.npz"

    def test_corruption_detected_by_checksums(self, tmp_path):
        from repro.errors import TraceCorruptionError

        path = self._archive(tmp_path)
        corrupt_archive(path, tmp_path / "bad.npz", seed=3)
        with pytest.raises(TraceCorruptionError, match="integrity"):
            load_traces(tmp_path / "bad.npz")

    def test_skip_mode_records_gaps_and_degrades(self, tmp_path):
        path = self._archive(tmp_path)
        corrupt_archive(
            path, tmp_path / "bad.npz", keys=["bus_lock_times"], seed=3
        )
        archive = load_traces(tmp_path / "bad.npz", on_corruption="skip")
        assert "membus" in archive.gaps
        report = analyze_traces(archive)
        verdict = report.verdict_for("membus")
        assert verdict.health == "degraded"
        assert report.health == "degraded"

    def test_corruption_is_deterministic(self, tmp_path):
        path = self._archive(tmp_path)
        corrupt_archive(path, tmp_path / "a.npz", seed=3)
        corrupt_archive(path, tmp_path / "b.npz", seed=3)
        assert (tmp_path / "a.npz").read_bytes() == \
            (tmp_path / "b.npz").read_bytes()

    def test_truncated_archive_is_corrupt_not_crash(self, tmp_path):
        from repro.errors import TraceCorruptionError

        path = self._archive(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceCorruptionError):
            load_traces(path)


class TestVerdictHealthPlumbing:
    def test_health_round_trips_through_json(self):
        run = _membus_run(injectors_from_string("drop:0.30", seed=6))
        payload = run.hunter.report().to_dict()
        assert payload["health"] == "degraded"
        assert payload["verdicts"][0]["health"] == "degraded"

    def test_render_flags_degraded_pipeline(self):
        run = _membus_run(injectors_from_string("drop:0.30", seed=6))
        text = run.hunter.report().render()
        assert "pipeline health: DEGRADED" in text

    def test_clean_verdicts_unchanged_by_health_field(self):
        verdict = _membus_run().hunter.report().verdicts[0]
        assert verdict.health == "ok"
        assert verdict.notes == ()
