"""Tests for the Table I cost model (calibrated to the paper's Cacti runs)."""

import pytest

from repro.config import AuditorConfig, CacheConfig
from repro.errors import HardwareError
from repro.hardware.cost_model import (
    detector_bits,
    estimate_auditor_costs,
    estimate_structure,
    histogram_buffer_bits,
    register_bits,
    total_area_mm2,
    total_power_mw,
)


class TestStructureSizes:
    def test_histogram_buffer_bits(self):
        # 2 slots x 128 entries x 16 bits
        assert histogram_buffer_bits(AuditorConfig()) == 4096

    def test_register_bits(self):
        # 2 x 128-byte vectors + 2 x 16-bit accumulators + 2 x 32-bit countdowns
        assert register_bits(AuditorConfig()) == 2048 + 32 + 64

    def test_detector_bits(self):
        # 4 x 4096 bloom bits + 7 metadata bits x 4096 blocks
        assert detector_bits(AuditorConfig(), CacheConfig()) == 45056


class TestTable1Values:
    """With default configs, the model reproduces the paper's Table I."""

    def test_histogram_buffers(self):
        costs = estimate_auditor_costs()
        c = costs["histogram_buffers"]
        assert c.area_mm2 == pytest.approx(0.0028, rel=1e-6)
        assert c.power_mw == pytest.approx(2.8, rel=1e-6)
        assert c.latency_ns == pytest.approx(0.17, rel=1e-6)

    def test_registers(self):
        c = estimate_auditor_costs()["registers"]
        assert c.area_mm2 == pytest.approx(0.0011, rel=1e-6)
        assert c.power_mw == pytest.approx(0.8, rel=1e-6)
        assert c.latency_ns == pytest.approx(0.17, rel=1e-6)

    def test_conflict_miss_detector(self):
        c = estimate_auditor_costs()["conflict_miss_detector"]
        assert c.area_mm2 == pytest.approx(0.004, rel=1e-6)
        assert c.power_mw == pytest.approx(5.4, rel=1e-6)
        assert c.latency_ns == pytest.approx(0.12, rel=1e-6)

    def test_total_insignificant_vs_i7(self):
        costs = estimate_auditor_costs()
        assert total_area_mm2(costs) < 0.01  # vs 263 mm^2 die
        assert total_power_mw(costs) < 10.0  # vs 130 W peak

    def test_latency_below_clock_period(self):
        """All structures respond within a 3 GHz clock period (0.33 ns)."""
        for cost in estimate_auditor_costs().values():
            assert cost.latency_ns < 0.33


class TestScaling:
    def test_area_scales_linearly(self):
        small = estimate_structure("buffer", "s", 1024)
        large = estimate_structure("buffer", "l", 4096)
        assert large.area_mm2 == pytest.approx(4 * small.area_mm2)

    def test_latency_grows_with_size(self):
        small = estimate_structure("detector", "s", 45056)
        large = estimate_structure("detector", "l", 45056 * 8)
        assert large.latency_ns > small.latency_ns

    def test_bigger_cache_costs_more(self):
        big_cache = CacheConfig(size_bytes=1024 * 1024)
        default = estimate_auditor_costs()["conflict_miss_detector"]
        scaled = estimate_auditor_costs(cache=big_cache)[
            "conflict_miss_detector"
        ]
        assert scaled.area_mm2 == pytest.approx(4 * default.area_mm2)

    def test_unknown_class_rejected(self):
        with pytest.raises(HardwareError):
            estimate_structure("nonsense", "x", 100)

    def test_zero_bits_rejected(self):
        with pytest.raises(HardwareError):
            estimate_structure("buffer", "x", 0)
