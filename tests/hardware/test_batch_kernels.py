"""Property tests: every batch kernel ≡ its scalar reference, exactly.

The vectorized hot path (bloom batch probes, tracker batch transitions,
the cache's deferred-check replay, the members-based generation advance)
is only admissible because it is *bit-identical* to the scalar protocol
— identical false-positive sets, not just rates. Hypothesis drives
arbitrary key columns, filter geometries, and interleaved
access/replacement/check sequences through both implementations and
diffs complete final states.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.hardware.bloom import (
    BloomFilter,
    hash_indices_batch,
    probe_positions,
)
from repro.hardware.conflict_tracker import GenerationConflictTracker
from repro.sim.events import LabeledEventTap
from repro.sim.resources.cache import SharedCache

KEYS = st.lists(st.integers(0, 2**50), max_size=120)
GEOMETRY = st.tuples(
    st.sampled_from((64, 257, 1024, 4096)),  # n_bits incl. non-power-of-2
    st.integers(1, 5),  # n_hashes
)


class TestBloomBatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(keys=KEYS, geometry=GEOMETRY)
    def test_hash_indices_batch_matches_probe_positions(self, keys, geometry):
        n_bits, n_hashes = geometry
        batch = hash_indices_batch(keys, n_bits, n_hashes)
        assert batch.shape == (len(keys), n_hashes)
        for row, key in zip(batch.tolist(), keys):
            assert tuple(row) == probe_positions(key, n_bits, n_hashes)

    @settings(max_examples=60, deadline=None)
    @given(keys=KEYS, geometry=GEOMETRY)
    def test_add_batch_matches_scalar_add(self, keys, geometry):
        n_bits, n_hashes = geometry
        scalar = BloomFilter(n_bits, n_hashes)
        batch = BloomFilter(n_bits, n_hashes)
        for key in keys:
            scalar.add(key)
        batch.add_batch(keys)
        assert scalar._words == batch._words
        assert scalar.insertions == batch.insertions

    @settings(max_examples=60, deadline=None)
    @given(
        inserted=KEYS,
        probed=st.lists(st.integers(0, 2**50), max_size=120),
        geometry=GEOMETRY,
    )
    def test_contains_batch_matches_scalar_contains(
        self, inserted, probed, geometry
    ):
        n_bits, n_hashes = geometry
        bloom = BloomFilter(n_bits, n_hashes)
        bloom.add_batch(inserted)
        batch = bloom.contains_batch(probed)
        # Identical false-positive *set*, not merely rate: each probe's
        # batch answer equals the scalar packed-word walk.
        assert batch.tolist() == [bloom.contains(key) for key in probed]

    def test_batch_word_wrap_matches_scalar_mask(self):
        # Keys at and beyond 2**64 exercise the uint64 wraparound that
        # must equal the scalar pipeline's ``& _MASK64``.
        keys = [2**64 - 1, 2**63, 123456789123456789]
        batch = hash_indices_batch(keys, 4096, 3)
        for row, key in zip(batch.tolist(), keys):
            assert tuple(row) == probe_positions(key, 4096, 3)


def _fresh_pair(capacity, generations=4):
    return (
        GenerationConflictTracker(capacity, generations=generations),
        GenerationConflictTracker(capacity, generations=generations),
    )


def _tracker_state(tracker):
    return (
        tracker._current,
        tracker._accessed_in_current,
        tracker.generation_advances,
        dict(tracker._gen_bits),
        [set(m) for m in tracker._members],
        [list(b._words) for b in tracker._blooms],
    )


#: Interleaved op streams: (op, key) with op 0=access 1=replace 2=check.
OPS = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 40)), max_size=150
)


class TestTrackerBatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(keys=st.lists(st.integers(0, 60), max_size=200),
           capacity=st.integers(4, 64))
    def test_on_access_batch_matches_scalar(self, keys, capacity):
        scalar, batch = _fresh_pair(capacity)
        for key in keys:
            scalar.on_access(key)
        batch.on_access_batch(keys)
        assert _tracker_state(scalar) == _tracker_state(batch)

    @settings(max_examples=60, deadline=None)
    @given(ops=OPS, capacity=st.integers(4, 64))
    def test_series_ops_match_scalar_methods(self, ops, capacity):
        scalar, closures = _fresh_pair(capacity)
        on_access, on_replacement, check = closures.series_ops()
        checks_scalar, checks_closure = [], []
        for op, key in ops:
            if op == 0:
                scalar.on_access(key)
                on_access(key)
            elif op == 1:
                scalar.on_replacement(key)
                on_replacement(key)
            else:
                checks_scalar.append(scalar.check_recent_eviction(key))
                checks_closure.append(check(key))
        assert checks_scalar == checks_closure
        assert _tracker_state(scalar) == _tracker_state(closures)

    @settings(max_examples=60, deadline=None)
    @given(
        warm=st.lists(st.integers(0, 40), max_size=80),
        probes=st.lists(st.integers(0, 60), max_size=80),
        capacity=st.integers(4, 64),
    )
    def test_check_batch_matches_scalar(self, warm, probes, capacity):
        tracker = GenerationConflictTracker(capacity)
        for i, key in enumerate(warm):
            tracker.on_access(key)
            if i % 3 == 0:
                tracker.on_replacement(key)
        batch = tracker.check_recent_eviction_batch(probes)
        assert batch.tolist() == [
            tracker.check_recent_eviction(key) for key in probes
        ]


class TestReplayCheckBatch:
    """The deferred-check replay ≡ interleaved scalar check/insert/clear."""

    @settings(max_examples=80, deadline=None)
    @given(ops=OPS, capacity=st.integers(4, 48))
    def test_replay_matches_interleaved_scalar(self, ops, capacity):
        # Reference: scalar ops in series order against one tracker.
        reference = GenerationConflictTracker(capacity)
        # Replayed: identical advance schedule, but checks answered
        # post-hoc from logs — mirroring the cache's fused kernel.
        replayed = GenerationConflictTracker(capacity)
        generations = replayed.generations
        snapshot = [list(b._words) for b in replayed._blooms]
        ins_pos = [[] for _ in range(generations)]
        ins_keys = [[] for _ in range(generations)]
        clears = []
        cand_pos, cand_keys = [], []
        scalar_answers = []
        for i, (op, key) in enumerate(ops):
            if op == 0:
                before = reference.generation_advances
                reference.on_access(key)
                replayed.on_access(key)
                if reference.generation_advances != before:
                    clears.append((i, reference._current))
            elif op == 1:
                latest = reference.latest_generation_of(key)
                reference.on_replacement(key)
                if latest is not None:
                    ins_pos[latest].append(i)
                    ins_keys[latest].append(key)
                    # Keep the replayed tracker's generation bits in step
                    # without touching its blooms (the kernel defers them).
                    del replayed._gen_bits[key]
                else:
                    replayed._gen_bits.pop(key, None)
            else:
                scalar_answers.append(reference.check_recent_eviction(key))
                cand_pos.append(i)
                cand_keys.append(key)
        verdict = replayed.replay_check_batch(
            len(ops), cand_pos, cand_keys, ins_pos, ins_keys, clears,
            snapshot,
        )
        assert verdict.tolist() == scalar_answers

    @settings(max_examples=40, deadline=None)
    @given(ops=OPS)
    def test_replay_from_warm_snapshot(self, ops):
        # A non-empty snapshot: pre-populate the blooms, then replay.
        reference = GenerationConflictTracker(32)
        for key in range(0, 20, 2):
            reference.on_access(key)
            reference.on_replacement(key)
        snapshot = [list(b._words) for b in reference._blooms]
        generations = reference.generations
        ins_pos = [[] for _ in range(generations)]
        ins_keys = [[] for _ in range(generations)]
        clears = []
        cand_pos, cand_keys, scalar_answers = [], [], []
        for i, (op, key) in enumerate(ops):
            if op == 0:
                before = reference.generation_advances
                reference.on_access(key)
                if reference.generation_advances != before:
                    clears.append((i, reference._current))
            elif op == 1:
                latest = reference.latest_generation_of(key)
                reference.on_replacement(key)
                if latest is not None:
                    ins_pos[latest].append(i)
                    ins_keys[latest].append(key)
            else:
                scalar_answers.append(reference.check_recent_eviction(key))
                cand_pos.append(i)
                cand_keys.append(key)
        verdict = reference.replay_check_batch(
            len(ops), cand_pos, cand_keys, ins_pos, ins_keys, clears,
            snapshot,
        )
        assert verdict.tolist() == scalar_answers


class TestAdvanceGenerationMembers:
    @settings(max_examples=60, deadline=None)
    @given(ops=OPS, capacity=st.integers(4, 64))
    def test_members_advance_matches_full_walk_reference(self, ops, capacity):
        """The O(generation) advance ≡ walking every resident block."""
        fast = GenerationConflictTracker(capacity)

        class FullWalk(GenerationConflictTracker):
            def _advance_generation(self):
                new_gen = (self._current + 1) % self.generations
                cleared_bit = ~(1 << new_gen)
                for key in list(self._gen_bits):
                    remaining = self._gen_bits[key] & cleared_bit
                    if remaining:
                        self._gen_bits[key] = remaining
                    else:
                        del self._gen_bits[key]
                self._members[new_gen] = set()
                self._blooms[new_gen].clear()
                self._current = new_gen
                self._accessed_in_current = 0
                self.generation_advances += 1

        reference = FullWalk(capacity)
        for op, key in ops:
            for tracker in (fast, reference):
                if op == 0:
                    tracker.on_access(key)
                elif op == 1:
                    tracker.on_replacement(key)
                else:
                    tracker.check_recent_eviction(key)
        assert fast._current == reference._current
        assert fast._gen_bits == reference._gen_bits
        assert fast._accessed_in_current == reference._accessed_in_current
        assert [b._words for b in fast._blooms] == [
            b._words for b in reference._blooms
        ]


#: Access rows (set, tag) over a tiny cache so evictions are frequent.
SERIES = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 11)), max_size=120
)


class TestAccessSeriesEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(chunks=st.lists(SERIES, max_size=4), jitter=st.sampled_from((0, 3)))
    def test_vectorized_matches_legacy_including_jitter(self, chunks, jitter):
        def build(vectorized):
            config = CacheConfig(size_bytes=8 * 1024)  # 16 sets x 8 ways
            tracker = GenerationConflictTracker(
                config.n_sets * config.associativity
            )
            tap = LabeledEventTap("prop")
            cache = SharedCache(
                config,
                tracker,
                tap,
                np.random.default_rng(77),
                latency_jitter=jitter,
                vectorized=vectorized,
            )
            return cache, tap

        vec, tap_vec = build(True)
        leg, tap_leg = build(False)
        t_vec = t_leg = 0
        for chunk in chunks:
            t_vec, lat_vec = vec.access_series(0, tuple(chunk), 8, t_vec)
            t_leg, lat_leg = leg.access_series(0, tuple(chunk), 8, t_leg)
            assert lat_vec.tolist() == lat_leg.tolist()
            assert t_vec == t_leg
        assert vec._jitter_idx == leg._jitter_idx
        assert (vec.hits, vec.misses, vec.conflict_misses) == (
            leg.hits,
            leg.misses,
            leg.conflict_misses,
        )
        for a, b in zip(tap_vec.records(), tap_leg.records()):
            assert a.tolist() == b.tolist()
        assert _tracker_state(vec.tracker) == _tracker_state(leg.tracker)
