"""Tests for the bloom filter: no false negatives, bounded false positives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hardware.bloom import BloomFilter


class TestBasics:
    def test_empty_contains_nothing(self):
        bloom = BloomFilter(1024)
        assert not bloom.contains(42)

    def test_added_key_found(self):
        bloom = BloomFilter(1024)
        bloom.add(42)
        assert bloom.contains(42)
        assert 42 in bloom

    def test_clear(self):
        bloom = BloomFilter(1024)
        bloom.add(42)
        bloom.clear()
        assert not bloom.contains(42)
        assert bloom.insertions == 0

    def test_bad_size(self):
        with pytest.raises(HardwareError):
            BloomFilter(0)

    def test_bad_hash_count(self):
        with pytest.raises(HardwareError):
            BloomFilter(64, n_hashes=0)

    def test_fill_ratio_grows(self):
        bloom = BloomFilter(256, n_hashes=3)
        assert bloom.fill_ratio == 0.0
        bloom.add(1)
        assert 0 < bloom.fill_ratio <= 3 / 256

    def test_deterministic_across_instances(self):
        a, b = BloomFilter(512), BloomFilter(512)
        a.add(1234)
        b.add(1234)
        assert a.contains(1234) and b.contains(1234)
        assert a._bits.tolist() == b._bits.tolist()


class TestNoFalseNegatives:
    @settings(max_examples=30)
    @given(st.sets(st.integers(0, 2**48), max_size=200))
    def test_every_inserted_key_found(self, keys):
        bloom = BloomFilter(4096, n_hashes=3)
        for key in keys:
            bloom.add(key)
        assert all(bloom.contains(key) for key in keys)


class TestFalsePositiveRate:
    def test_rate_reasonable_at_paper_sizing(self):
        """Paper sizing: 4096-bit filter per generation holding up to ~1024
        tags (one generation's worth of a 4096-block cache)."""
        bloom = BloomFilter(4096, n_hashes=3)
        inserted = set(range(0, 1024 * 7, 7))
        for key in inserted:
            bloom.add(key)
        probes = [k for k in range(1_000_000, 1_010_000) if k not in inserted]
        fp = sum(bloom.contains(k) for k in probes) / len(probes)
        assert fp < 0.25
        # The analytic estimate should be in the same ballpark.
        assert bloom.false_positive_rate() == pytest.approx(fp, abs=0.1)


class TestProbeCache:
    def test_probe_positions_stable_across_clear(self):
        bloom = BloomFilter(512, n_hashes=3)
        first = tuple(bloom._indices(1234))
        bloom.add(1234)
        bloom.clear()
        assert tuple(bloom._indices(1234)) == first
        assert not bloom.contains(1234)  # bits cleared, positions cached

    def test_distinct_keys_distinct_probes_mostly(self):
        bloom = BloomFilter(4096, n_hashes=3)
        probe_sets = {tuple(bloom._indices(k)) for k in range(500)}
        assert len(probe_sets) > 490  # collisions possible but rare
