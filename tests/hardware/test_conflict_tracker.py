"""Tests for conflict-miss trackers: ideal oracle and generation design."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hardware.conflict_tracker import (
    GenerationConflictTracker,
    IdealLRUConflictTracker,
)


class TestIdealTracker:
    def test_recent_eviction_classified(self):
        tracker = IdealLRUConflictTracker(capacity=8)
        tracker.on_access(1)
        tracker.on_replacement(1)  # premature set-conflict eviction
        assert tracker.check_recent_eviction(1)

    def test_old_block_not_classified(self):
        tracker = IdealLRUConflictTracker(capacity=4)
        tracker.on_access(1)
        for key in range(10, 20):  # push key 1 off the shadow stack
            tracker.on_access(key)
        assert not tracker.check_recent_eviction(1)

    def test_never_seen_not_classified(self):
        tracker = IdealLRUConflictTracker(capacity=4)
        assert not tracker.check_recent_eviction(123)


class TestGenerationTracker:
    def test_recent_eviction_classified(self):
        tracker = GenerationConflictTracker(capacity=16)
        tracker.on_access(1)
        tracker.on_replacement(1)
        assert tracker.check_recent_eviction(1)

    def test_unreplaced_block_not_classified(self):
        tracker = GenerationConflictTracker(capacity=16)
        tracker.on_access(1)
        assert not tracker.check_recent_eviction(1)

    def test_generation_advance_on_threshold(self):
        tracker = GenerationConflictTracker(capacity=16, generations=4)
        assert tracker.threshold == 4
        for key in range(4):
            tracker.on_access(key)
        assert tracker.generation_advances == 1
        assert tracker.current_generation == 1

    def test_rehit_does_not_advance(self):
        tracker = GenerationConflictTracker(capacity=16)
        for _ in range(10):
            tracker.on_access(7)  # same block: one distinct access
        assert tracker.generation_advances == 0

    def test_old_generation_forgotten(self):
        """A tag evicted long ago (its generation recycled) is no longer a
        conflict candidate — the bounded-history approximation."""
        tracker = GenerationConflictTracker(capacity=16, generations=4)
        tracker.on_access(1)
        tracker.on_replacement(1)
        # Touch 4 generations' worth of fresh blocks (16 distinct).
        for key in range(100, 117):
            tracker.on_access(key)
        assert not tracker.check_recent_eviction(1)

    def test_latest_generation_of(self):
        tracker = GenerationConflictTracker(capacity=16, generations=4)
        tracker.on_access(1)
        assert tracker.latest_generation_of(1) == 0
        for key in range(100, 104):
            tracker.on_access(key)
        tracker.on_access(1)  # re-touch in generation 1
        assert tracker.latest_generation_of(1) == 1

    def test_metadata_bits(self):
        tracker = GenerationConflictTracker(capacity=4096)
        assert tracker.metadata_bits_per_block == 7  # 4 gen + 3 owner

    def test_clear(self):
        tracker = GenerationConflictTracker(capacity=16)
        tracker.on_access(1)
        tracker.on_replacement(1)
        tracker.clear()
        assert not tracker.check_recent_eviction(1)
        assert tracker.current_generation == 0

    def test_bad_capacity(self):
        with pytest.raises(HardwareError):
            GenerationConflictTracker(capacity=0)

    def test_bad_generations(self):
        with pytest.raises(HardwareError):
            GenerationConflictTracker(capacity=16, generations=1)


class TestApproximationQuality:
    """The practical tracker approximates the ideal LRU-stack oracle."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_agreement_on_random_workload(self, seed):
        rng = np.random.default_rng(seed)
        capacity = 64
        ideal = IdealLRUConflictTracker(capacity)
        practical = GenerationConflictTracker(capacity)
        # A re-use-heavy random access/evict stream over a small key space —
        # deliberately adversarial (churn near the capacity boundary, where
        # the generation approximation is coarsest). The trackers still
        # agree on a solid majority of classifications; on the structured
        # ping-pong pattern below they agree exactly.
        keys = rng.integers(0, 128, size=600)
        agree = 0
        total = 0
        for key in keys:
            key = int(key)
            verdict_i = ideal.check_recent_eviction(key)
            verdict_p = practical.check_recent_eviction(key)
            total += 1
            agree += verdict_i == verdict_p
            ideal.on_access(key)
            practical.on_access(key)
            if rng.random() < 0.3:
                ideal.on_replacement(key)
                practical.on_replacement(key)
        assert agree / total > 0.55

    def test_immediate_refetch_agreement(self):
        """Both trackers classify an evict-then-refetch ping-pong, the
        cache covert channel's access pattern."""
        for tracker in (
            IdealLRUConflictTracker(256),
            GenerationConflictTracker(256),
        ):
            for key in range(32):
                tracker.on_access(key)
            for round_ in range(3):
                for key in range(32):
                    tracker.on_replacement(key)
                    assert tracker.check_recent_eviction(key)
                    tracker.on_access(key)
