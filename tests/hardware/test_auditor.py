"""Tests for the CC-auditor register model."""

import numpy as np
import pytest

from repro.config import AuditorConfig
from repro.errors import HardwareError
from repro.hardware.auditor import CCAuditor, MonitorSlot, VectorRegisterPair


class TestMonitorSlot:
    def test_histogram_accumulation(self):
        slot = MonitorSlot("membus", dt=1000, config=AuditorConfig())
        slot.ingest_window_counts([0, 0, 3, 20, 20])
        assert slot.histogram[0] == 2
        assert slot.histogram[3] == 1
        assert slot.histogram[20] == 2
        assert slot.windows_recorded == 5

    def test_density_clamps_to_last_bin(self):
        slot = MonitorSlot("membus", dt=1000, config=AuditorConfig())
        slot.ingest_window_counts([500])
        assert slot.histogram[127] == 1

    def test_entry_saturation(self):
        config = AuditorConfig(histogram_entry_bits=4)  # max 15
        slot = MonitorSlot("m", dt=10, config=config)
        slot.ingest_window_counts([1] * 100)
        assert slot.histogram[1] == 15

    def test_read_and_reset(self):
        slot = MonitorSlot("m", dt=10, config=AuditorConfig())
        slot.ingest_window_counts([5, 5])
        snapshot = slot.read_and_reset()
        assert snapshot[5] == 2
        assert slot.histogram.sum() == 0
        assert slot.windows_recorded == 0

    def test_negative_counts_rejected(self):
        slot = MonitorSlot("m", dt=10, config=AuditorConfig())
        with pytest.raises(HardwareError):
            slot.ingest_window_counts([-1])

    def test_bad_dt(self):
        with pytest.raises(HardwareError):
            MonitorSlot("m", dt=0, config=AuditorConfig())


class TestVectorRegisters:
    def test_record_and_drain(self):
        vectors = VectorRegisterPair(AuditorConfig())
        vectors.record(1, 2)
        vectors.record(2, 1)
        reps, vics = vectors.drain()
        assert reps.tolist() == [1, 2]
        assert vics.tolist() == [2, 1]

    def test_drain_clears(self):
        vectors = VectorRegisterPair(AuditorConfig())
        vectors.record(1, 2)
        vectors.drain()
        reps, _ = vectors.drain()
        assert reps.size == 0

    def test_alternation_on_fill(self):
        config = AuditorConfig(vector_register_bytes=4)
        vectors = VectorRegisterPair(config)
        for _ in range(9):
            vectors.record(1, 2)
        assert vectors.swaps == 2
        reps, _ = vectors.drain()
        assert reps.size == 9  # lossless across swaps

    def test_context_id_bounds(self):
        vectors = VectorRegisterPair(AuditorConfig())
        with pytest.raises(HardwareError):
            vectors.record(8, 0)

    def test_batch(self):
        vectors = VectorRegisterPair(AuditorConfig())
        vectors.record_batch(np.array([0, 1]), np.array([1, 0]))
        assert vectors.pending == 2


class TestCCAuditor:
    def test_two_slot_limit(self):
        auditor = CCAuditor()
        auditor.program(0, "membus", 100_000)
        auditor.program(1, "divider0", 500)
        with pytest.raises(HardwareError):
            auditor.free_slot_index()

    def test_free_slot_discovery(self):
        auditor = CCAuditor()
        assert auditor.free_slot_index() == 0
        auditor.program(0, "membus", 100_000)
        assert auditor.free_slot_index() == 1

    def test_active_units(self):
        auditor = CCAuditor()
        auditor.program(0, "membus", 100_000)
        assert auditor.active_units == ("membus",)

    def test_unprogrammed_slot_raises(self):
        with pytest.raises(HardwareError):
            CCAuditor().slot(0)

    def test_bad_slot_index(self):
        with pytest.raises(HardwareError):
            CCAuditor().program(5, "x", 10)

    def test_reprogram_replaces(self):
        auditor = CCAuditor()
        auditor.program(0, "membus", 100_000)
        auditor.program(0, "divider0", 500)
        assert auditor.slot(0).unit_name == "divider0"
        assert auditor.slot(0).dt == 500
