"""Tests for the fully-associative LRU shadow stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hardware.lru_stack import LRUStack


class TestLRUStack:
    def test_touch_and_hit(self):
        stack = LRUStack(4)
        stack.touch(1)
        assert stack.would_hit(1)
        assert not stack.would_hit(2)

    def test_capacity_eviction(self):
        stack = LRUStack(2)
        stack.touch(1)
        stack.touch(2)
        stack.touch(3)  # evicts 1
        assert not stack.would_hit(1)
        assert stack.would_hit(2)
        assert stack.would_hit(3)

    def test_touch_refreshes_recency(self):
        stack = LRUStack(2)
        stack.touch(1)
        stack.touch(2)
        stack.touch(1)  # 2 is now LRU
        stack.touch(3)  # evicts 2
        assert stack.would_hit(1)
        assert not stack.would_hit(2)

    def test_depth(self):
        stack = LRUStack(4)
        stack.touch(1)
        stack.touch(2)
        stack.touch(3)
        assert stack.depth(3) == 0
        assert stack.depth(1) == 2
        assert stack.depth(99) == -1

    def test_len_and_clear(self):
        stack = LRUStack(4)
        stack.touch(1)
        stack.touch(2)
        assert len(stack) == 2
        stack.clear()
        assert len(stack) == 0

    def test_bad_capacity(self):
        with pytest.raises(HardwareError):
            LRUStack(0)

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 30), max_size=200), st.integers(1, 16))
    def test_holds_most_recent_distinct(self, accesses, capacity):
        """Invariant: the stack holds exactly the ``capacity`` most recently
        accessed distinct keys."""
        stack = LRUStack(capacity)
        for key in accesses:
            stack.touch(key)
        recent = []
        for key in reversed(accesses):
            if key not in recent:
                recent.append(key)
            if len(recent) == capacity:
                break
        for key in set(accesses):
            assert stack.would_hit(key) == (key in recent)
