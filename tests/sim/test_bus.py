"""Tests for the memory bus / QPI lock model."""

import numpy as np
import pytest

from repro.config import BusConfig
from repro.errors import SimulationError
from repro.sim.events import EventTap
from repro.sim.resources.bus import MemoryBus
from repro.util.rng import make_rng


@pytest.fixture
def bus():
    config = BusConfig(
        base_latency=160,
        locked_extra_latency=190,
        lock_duration=3000,
        latency_jitter=0,
    )
    return MemoryBus(config, EventTap("lock"), make_rng(0))


class TestLockBurst:
    def test_lock_events_recorded(self, bus):
        end = bus.lock_burst(ctx=0, start=0, count=5, period=5000)
        assert end == 25_000
        assert bus.lock_tap.times().tolist() == [0, 5000, 10000, 15000, 20000]

    def test_bad_burst_rejected(self, bus):
        with pytest.raises(SimulationError):
            bus.lock_burst(0, 0, count=0, period=100)

    def test_locked_at_inside_window(self, bus):
        bus.lock_burst(0, start=1000, count=1, period=5000)
        times = np.array([999, 1000, 3999, 4000, 10_000])
        assert bus.locked_at(times).tolist() == [
            False, True, True, False, False,
        ]

    def test_unlocked_when_no_locks(self, bus):
        assert not bus.locked_at(np.array([0, 100])).any()


class TestSampling:
    def test_uncontended_latency(self, bus):
        _, latencies = bus.sample(ctx=1, start=0, count=10, period=1000)
        assert (latencies == 160).all()

    def test_contended_latency(self, bus):
        bus.lock_burst(0, start=0, count=100, period=2000)
        # Lock duration 3000 > period 2000: bus continuously locked.
        _, latencies = bus.sample(ctx=1, start=1000, count=10, period=1000)
        assert (latencies == 350).all()

    def test_mixed_window(self, bus):
        bus.lock_burst(0, start=0, count=1, period=5000)  # locked [0, 3000)
        _, latencies = bus.sample(ctx=1, start=0, count=6, period=1000)
        assert latencies.tolist() == [350, 350, 350, 160, 160, 160]

    def test_sample_end_time(self, bus):
        end, _ = bus.sample(ctx=1, start=100, count=4, period=500)
        assert end == 2100

    def test_jitter_bounded(self):
        config = BusConfig(latency_jitter=10)
        noisy = MemoryBus(config, EventTap("lock"), make_rng(3))
        _, lat = noisy.sample(0, 0, 1000, 100)
        assert (lat >= config.base_latency - 10).all()
        assert (lat <= config.base_latency + 10).all()


class TestNoiseLocks:
    def test_poisson_noise_rate(self, bus):
        # 1e-4 locks/cycle over 10M cycles -> ~1000 events.
        bus.noise_locks(ctx=3, start=0, duration=10_000_000, rate_per_cycle=1e-4)
        assert 800 <= bus.lock_tap.count <= 1200

    def test_zero_rate_no_events(self, bus):
        bus.noise_locks(ctx=3, start=0, duration=1_000_000, rate_per_cycle=0.0)
        assert bus.lock_tap.count == 0

    def test_negative_rate_rejected(self, bus):
        with pytest.raises(SimulationError):
            bus.noise_locks(0, 0, 100, -0.1)

    def test_noise_locks_contend(self, bus):
        bus.noise_locks(ctx=3, start=0, duration=100_000, rate_per_cycle=0.001)
        times = bus.lock_tap.times()
        assert bus.locked_at(times).all()
