"""Tests for the shared L2 cache and conflict-miss event generation."""

import pytest

from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.hardware.conflict_tracker import IdealLRUConflictTracker
from repro.sim.events import LabeledEventTap
from repro.sim.resources.cache import SharedCache, block_key
from repro.util.rng import make_rng


def make_cache(n_sets=8, assoc=2):
    config = CacheConfig(
        size_bytes=n_sets * assoc * 64,
        line_bytes=64,
        associativity=assoc,
        hit_latency=20,
        miss_latency=200,
    )
    tracker = IdealLRUConflictTracker(config.n_blocks)
    cache = SharedCache(
        config, tracker, LabeledEventTap("miss"), make_rng(0), latency_jitter=0
    )
    return cache


class TestBasicAccess:
    def test_first_access_misses(self):
        cache = make_cache()
        latency, hit = cache.access(ctx=0, set_index=0, tag=1, time=0)
        assert not hit
        assert latency == 200

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0, 0, 1, 0)
        latency, hit = cache.access(0, 0, 1, 10)
        assert hit
        assert latency == 20

    def test_lru_eviction_order(self):
        cache = make_cache(assoc=2)
        cache.access(0, 0, 1, 0)
        cache.access(0, 0, 2, 1)
        cache.access(0, 0, 1, 2)   # refresh tag 1
        cache.access(0, 0, 3, 3)   # evicts tag 2 (LRU)
        assert cache.resident_tags(0) == (1, 3)

    def test_bad_set_index(self):
        cache = make_cache(n_sets=8)
        with pytest.raises(SimulationError):
            cache.access(0, 8, 1, 0)

    def test_owner_tracks_last_accessor(self):
        cache = make_cache()
        cache.access(0, 0, 1, 0)
        assert cache.owner_of(0, 1) == 0
        cache.access(3, 0, 1, 5)
        assert cache.owner_of(0, 1) == 3

    def test_occupancy(self):
        cache = make_cache(n_sets=4, assoc=2)
        for tag in range(3):
            cache.access(0, 0, tag, tag)  # one set overflows at 3rd
        assert cache.occupancy == 2

    def test_flush(self):
        cache = make_cache()
        cache.access(0, 0, 1, 0)
        cache.flush()
        assert cache.occupancy == 0
        _, hit = cache.access(0, 0, 1, 10)
        assert not hit


class TestConflictEvents:
    def test_pingpong_generates_labeled_conflicts(self):
        """Re-fetching a prematurely evicted block is a conflict miss with
        (replacer, victim-owner) labels."""
        cache = make_cache(n_sets=8, assoc=2)
        # ctx 0 owns tags 1, 2 in set 0 (set full).
        cache.access(0, 0, 1, 0)
        cache.access(0, 0, 2, 1)
        # ctx 1 inserts tag 3: evicts tag 1 (no conflict: 3 never seen).
        cache.access(1, 0, 3, 2)
        assert cache.miss_tap.count == 0
        # ctx 0 re-fetches tag 1: recently evicted -> conflict, victim is
        # the evicted block's owner (ctx 0's tag 2... LRU order: 2, 3).
        cache.access(0, 0, 1, 3)
        assert cache.miss_tap.count == 1
        _, reps, vics = cache.miss_tap.records()
        assert reps.tolist() == [0]

    def test_cold_misses_not_conflicts(self):
        cache = make_cache()
        for tag in range(10):
            cache.access(0, tag % 8, tag, tag)
        assert cache.conflict_misses == 0

    def test_no_event_without_eviction(self):
        """A conflict-classified fill into a non-full set records no event
        (there is no victim)."""
        cache = make_cache(n_sets=2, assoc=2)
        cache.access(0, 0, 1, 0)
        cache.access(0, 0, 2, 1)
        cache.access(0, 0, 3, 2)   # evicts 1
        cache.access(0, 1, 9, 3)   # other set
        # Re-access 1 -> conflict classified, set 0 full -> event recorded.
        before = cache.miss_tap.count
        cache.access(0, 0, 1, 4)
        assert cache.miss_tap.count == before + 1


class TestAccessSeries:
    def test_series_advances_time(self):
        cache = make_cache()
        end, latencies = cache.access_series(
            0, [(0, 1), (1, 2), (0, 1)], gap=8, start=100
        )
        assert latencies.tolist() == [200, 200, 20]
        assert end == 100 + (200 + 8) * 2 + (20 + 8)

    def test_series_empty_latencies_shape(self):
        cache = make_cache()
        _, latencies = cache.access_series(0, [(0, 5)], gap=0, start=0)
        assert latencies.shape == (1,)


class TestRandomTraffic:
    def test_count_and_range(self):
        cache = make_cache(n_sets=8, assoc=2)
        cache.random_traffic(
            ctx=2, start=0, duration=100_000, count=500, set_lo=2, set_hi=6
        )
        assert cache.hits + cache.misses == 500
        for s in (0, 1, 6, 7):
            assert cache.resident_tags(s) == ()

    def test_bad_range(self):
        cache = make_cache(n_sets=8)
        with pytest.raises(SimulationError):
            cache.random_traffic(0, 0, 100, 10, set_lo=5, set_hi=3)

    def test_zero_count_noop(self):
        cache = make_cache()
        end = cache.random_traffic(0, 0, 1000, 0)
        assert end == 1000
        assert cache.misses == 0


def test_block_key_unique():
    keys = {block_key(s, t) for s in range(64) for t in range(64)}
    assert len(keys) == 64 * 64
