"""Tests for OS-level context allocation and migration tracking."""

import pytest

from repro.config import MachineConfig
from repro.errors import SchedulingError
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


@pytest.fixture
def sched():
    return Scheduler(MachineConfig())


def proc(name="p"):
    return Process(name, body=lambda p: iter(()))


class TestPlacement:
    def test_explicit_context(self, sched):
        p = proc()
        assert sched.place(p, ctx=5) == 5
        assert p.ctx == 5
        assert sched.occupant(5) is p

    def test_core_pinning(self, sched):
        p = proc()
        ctx = sched.place(p, core=2)
        assert sched.core_of(ctx) == 2

    def test_first_free_default(self, sched):
        a, b = proc("a"), proc("b")
        assert sched.place(a) == 0
        assert sched.place(b) == 1

    def test_occupied_context_rejected(self, sched):
        sched.place(proc("a"), ctx=1)
        with pytest.raises(SchedulingError):
            sched.place(proc("b"), ctx=1)

    def test_full_core_rejected(self, sched):
        sched.place(proc("a"), core=0)
        sched.place(proc("b"), core=0)
        with pytest.raises(SchedulingError):
            sched.place(proc("c"), core=0)

    def test_out_of_range_context(self, sched):
        with pytest.raises(SchedulingError):
            sched.place(proc(), ctx=99)

    def test_release(self, sched):
        p = proc()
        sched.place(p, ctx=2)
        sched.release(p)
        assert sched.occupant(2) is None

    def test_free_contexts_per_core(self, sched):
        sched.place(proc("a"), ctx=0)
        assert sched.free_contexts(core=0) == [1]


class TestTopologyQueries:
    def test_contexts_of_core(self, sched):
        assert sched.contexts_of_core(1) == [2, 3]

    def test_core_of(self, sched):
        assert sched.core_of(7) == 3

    def test_bad_core(self, sched):
        with pytest.raises(SchedulingError):
            sched.contexts_of_core(4)

    def test_bad_context(self, sched):
        with pytest.raises(SchedulingError):
            sched.core_of(8)


class TestMigration:
    def test_migrate_updates_placement(self, sched):
        p = proc("trojan")
        sched.place(p, ctx=0)
        sched.migrate(p, new_ctx=4, time=1000)
        assert p.ctx == 4
        assert sched.occupant(0) is None
        assert sched.occupant(4) is p

    def test_migration_recorded(self, sched):
        p = proc("trojan")
        sched.place(p, ctx=0)
        sched.migrate(p, 4, time=1000)
        sched.migrate(p, 6, time=2000)
        assert sched.context_history("trojan", 0) == [0, 4, 6]

    def test_migrate_to_occupied_rejected(self, sched):
        a, b = proc("a"), proc("b")
        sched.place(a, ctx=0)
        sched.place(b, ctx=1)
        with pytest.raises(SchedulingError):
            sched.migrate(a, 1, time=0)

    def test_migrate_unplaced_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.migrate(proc(), 1, time=0)
