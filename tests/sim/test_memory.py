"""Tests for the DRAM latency model."""

import pytest

from repro.errors import ConfigError
from repro.sim.resources.memory import MainMemory
from repro.util.rng import make_rng


class TestMainMemory:
    def test_latencies_within_jitter(self):
        memory = MainMemory(access_latency=160, jitter=12)
        latencies = memory.latencies(1000, make_rng(0))
        assert latencies.min() >= 148
        assert latencies.max() <= 172
        assert latencies.shape == (1000,)

    def test_no_jitter_constant(self):
        memory = MainMemory(access_latency=100, jitter=0)
        assert (memory.latencies(50, make_rng(0)) == 100).all()

    def test_bad_latency(self):
        with pytest.raises(ConfigError):
            MainMemory(access_latency=0)

    def test_jitter_bound(self):
        with pytest.raises(ConfigError):
            MainMemory(access_latency=10, jitter=10)


def test_error_hierarchy():
    """All library errors descend from ReproError (single catch point)."""
    from repro import errors

    for name in (
        "ConfigError", "SimulationError", "SchedulingError", "ChannelError",
        "DetectionError", "HardwareError", "AuthorizationError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)
    assert issubclass(errors.SchedulingError, errors.SimulationError)
