"""Tests for the SMT integer-divider model."""

import numpy as np
import pytest

from repro.config import DividerConfig
from repro.errors import SimulationError
from repro.sim.events import RateSegmentTap
from repro.sim.resources.divider import CONTENTION_INTENSITY, DividerUnit
from repro.util.rng import make_rng


@pytest.fixture
def unit():
    return DividerUnit(0, DividerConfig(), RateSegmentTap("wait"), make_rng(0))


CFG = DividerConfig()
LAT_IDLE = CFG.loop_overhead + 4 * CFG.latency
LAT_BUSY = CFG.loop_overhead + 4 * (CFG.latency + CFG.contended_extra_latency)


class TestSaturate:
    def test_saturate_alone_no_waits(self, unit):
        unit.saturate(ctx=0, start=0, duration=100_000)
        assert unit.wait_tap.count == 0

    def test_bad_duration(self, unit):
        with pytest.raises(SimulationError):
            unit.saturate(0, 0, 0)

    def test_overlap_produces_wait_segment(self, unit):
        unit.saturate(ctx=0, start=0, duration=50_000)
        unit.run_loop(ctx=1, start=0, iterations=100, divs_per_iter=4)
        # Waits at the full saturation x loop intensity rate.
        expected_rate = 1.0 / CFG.contention_event_period
        segments = unit.wait_tap.segments
        assert len(segments) >= 1
        assert segments[0].rate == pytest.approx(expected_rate)


class TestRunLoop:
    def test_idle_latency(self, unit):
        end, lat = unit.run_loop(ctx=1, start=0, iterations=50, divs_per_iter=4)
        # Observed latencies jitter by <=3 around the deterministic value.
        assert np.abs(lat - LAT_IDLE).max() <= 3
        assert end == 50 * LAT_IDLE

    def test_contended_latency(self, unit):
        unit.saturate(ctx=0, start=0, duration=10**9)
        _, lat = unit.run_loop(ctx=1, start=0, iterations=50, divs_per_iter=4)
        assert np.abs(lat - LAT_BUSY).max() <= 3

    def test_transition_mid_loop(self, unit):
        # Saturation covers only the first half of the loop's span.
        unit.saturate(ctx=0, start=0, duration=20 * LAT_BUSY)
        _, lat = unit.run_loop(ctx=1, start=0, iterations=60, divs_per_iter=4)
        # Early iterations contended, late iterations idle.
        assert abs(int(lat[0]) - LAT_BUSY) <= 3
        assert abs(int(lat[-1]) - LAT_IDLE) <= 3

    def test_loop_usage_creates_waits_for_later_saturator(self, unit):
        unit.run_loop(ctx=1, start=0, iterations=100, divs_per_iter=4)
        unit.saturate(ctx=0, start=0, duration=50_000)
        assert len(unit.wait_tap.segments) >= 1

    def test_bad_sizes(self, unit):
        with pytest.raises(SimulationError):
            unit.run_loop(0, 0, 0, 4)


class TestRandomUse:
    def test_duty_respected(self, unit):
        unit.random_use(ctx=0, start=0, duration=10_000_000, duty=0.2,
                        burst_cycles=25_000, intensity=0.1)
        track = unit._usage[0]
        covered = sum(e - s for s, e in zip(track.starts, track.ends))
        assert covered == pytest.approx(0.2 * 10_000_000, rel=0.2)

    def test_intervals_disjoint_and_sorted(self, unit):
        unit.random_use(0, 0, 5_000_000, duty=0.3, burst_cycles=20_000)
        track = unit._usage[0]
        starts = np.array(track.starts)
        ends = np.array(track.ends)
        assert (starts[1:] >= ends[:-1]).all()

    def test_low_intensity_overlap_rate(self, unit):
        # Two benign users at intensity 0.1 -> rate product 0.01.
        unit.random_use(0, 0, 1_000_000, duty=1.0, burst_cycles=1_000_000,
                        intensity=0.1)
        unit.random_use(1, 0, 1_000_000, duty=1.0, burst_cycles=1_000_000,
                        intensity=0.1)
        seg = unit.wait_tap.segments[0]
        assert seg.rate == pytest.approx(
            0.01 / CFG.contention_event_period
        )

    def test_zero_duty_no_usage(self, unit):
        unit.random_use(0, 0, 1_000_000, duty=0.0, burst_cycles=1000)
        assert 0 not in unit._usage

    def test_bad_duty(self, unit):
        with pytest.raises(SimulationError):
            unit.random_use(0, 0, 1000, duty=1.5, burst_cycles=100)

    def test_bad_intensity(self, unit):
        with pytest.raises(SimulationError):
            unit.random_use(0, 0, 1000, duty=0.5, burst_cycles=100,
                            intensity=0.0)

    def test_low_intensity_does_not_slow_loop(self, unit):
        # Benign usage below the contention threshold must not inflate the
        # sibling's iteration latency.
        assert 0.1 < CONTENTION_INTENSITY
        unit.random_use(0, 0, 10**7, duty=1.0, burst_cycles=10**7,
                        intensity=0.1)
        _, lat = unit.run_loop(1, 0, 50, 4)
        assert np.abs(lat - LAT_IDLE).max() <= 3


class TestWaitDensity:
    def test_saturation_density_matches_paper(self, unit):
        """A saturated divider with a looping sibling sustains ~96 wait
        events per 500-cycle window (Figure 6b's second mode)."""
        unit.saturate(0, 0, 1_000_000)
        unit.run_loop(1, 0, 5000, 4)
        counts = unit.wait_tap.density_counts(500, 0, 500_000)
        busy = counts[counts > 0]
        assert busy.size > 500
        assert 90 <= np.median(busy) <= 102
