"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, Priority


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(20, lambda: order.append("b"))
        engine.schedule(10, lambda: order.append("a"))
        engine.schedule(30, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        engine = Engine()
        order = []
        engine.schedule(5, lambda: order.append("consumer"), Priority.CONSUMER)
        engine.schedule(5, lambda: order.append("producer"), Priority.PRODUCER)
        engine.schedule(5, lambda: order.append("daemon"), Priority.DAEMON)
        engine.run()
        assert order == ["producer", "consumer", "daemon"]

    def test_fifo_within_same_priority(self):
        engine = Engine()
        order = []
        engine.schedule(5, lambda: order.append(1))
        engine.schedule(5, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        assert engine.now == 10
        with pytest.raises(SimulationError):
            engine.schedule(5, lambda: None)

    def test_callbacks_can_schedule_more(self):
        engine = Engine()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                engine.schedule(engine.now + 10, lambda: chain(n + 1))

        engine.schedule(0, lambda: chain(0))
        engine.run()
        assert seen == [0, 1, 2, 3]
        assert engine.now == 30


class TestRunUntil:
    def test_stops_before_boundary(self):
        engine = Engine()
        fired = []
        engine.schedule(10, lambda: fired.append(10))
        engine.schedule(20, lambda: fired.append(20))
        engine.run_until(20)
        assert fired == [10]
        assert engine.now == 20  # time advances to the boundary

    def test_time_jumps_when_idle(self):
        engine = Engine()
        engine.run_until(1000)
        assert engine.now == 1000

    def test_events_executed_counter(self):
        engine = Engine()
        for t in (1, 2, 3):
            engine.schedule(t, lambda: None)
        engine.run()
        assert engine.events_executed == 3

    def test_peek_time(self):
        engine = Engine()
        assert engine.peek_time() is None
        engine.schedule(42, lambda: None)
        assert engine.peek_time() == 42
