"""Tests for indicator-event taps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.events import EventTap, LabeledEventTap, RateSegmentTap


class TestEventTap:
    def test_times_sorted(self):
        tap = EventTap("t")
        tap.record_batch(np.array([30, 10, 20]), ctx=1)
        assert tap.times().tolist() == [10, 20, 30]

    def test_contexts_follow_times(self):
        tap = EventTap("t")
        tap.record(20, ctx=2)
        tap.record(10, ctx=1)
        times, ctxs = tap.times_and_contexts()
        assert times.tolist() == [10, 20]
        assert ctxs.tolist() == [1, 2]

    def test_times_in_window(self):
        tap = EventTap("t")
        tap.record_batch(np.arange(0, 100, 10), ctx=0)
        assert tap.times_in(25, 55).tolist() == [30, 40, 50]

    def test_density_counts(self):
        tap = EventTap("t")
        tap.record_batch(np.array([1, 2, 3, 25, 26]), ctx=0)
        counts = tap.density_counts(10, 0, 30)
        assert counts.tolist() == [3, 0, 2]

    def test_density_counts_empty(self):
        tap = EventTap("t")
        assert tap.density_counts(10, 0, 50).tolist() == [0] * 5

    def test_density_bad_dt(self):
        tap = EventTap("t")
        with pytest.raises(SimulationError):
            tap.density_counts(0, 0, 10)

    def test_clear(self):
        tap = EventTap("t")
        tap.record(5, 0)
        tap.clear()
        assert tap.count == 0
        assert tap.times().size == 0

    def test_cache_invalidated_on_append(self):
        tap = EventTap("t")
        tap.record(5, 0)
        assert tap.times().tolist() == [5]
        tap.record(3, 0)
        assert tap.times().tolist() == [3, 5]


class TestRateSegmentTap:
    def test_segment_mass_spread(self):
        tap = RateSegmentTap("d")
        tap.record_segment(0, 1000, 0.01)  # 10 events over [0, 1000)
        counts = tap.density_counts(100, 0, 1000)
        assert counts.tolist() == [1] * 10

    def test_partial_window_coverage(self):
        tap = RateSegmentTap("d")
        tap.record_segment(50, 150, 0.1)  # 10 events, half in each window
        counts = tap.density_counts(100, 0, 200)
        assert counts.tolist() == [5, 5]

    def test_sparse_events_counted(self):
        tap = RateSegmentTap("d")
        tap.record(10)
        tap.record(110)
        assert tap.density_counts(100, 0, 200).tolist() == [1, 1]

    def test_zero_rate_ignored(self):
        tap = RateSegmentTap("d")
        tap.record_segment(0, 100, 0.0)
        assert len(tap.segments) == 0

    def test_batch_recording(self):
        tap = RateSegmentTap("d")
        tap.record_segments_batch(
            np.array([0, 100]), np.array([50, 150]), np.array([0.1, 0.2])
        )
        assert len(tap.segments) == 2

    def test_batch_skips_empty(self):
        tap = RateSegmentTap("d")
        tap.record_segments_batch(
            np.array([0, 100]), np.array([0, 150]), np.array([0.1, 0.0])
        )
        assert len(tap.segments) == 0

    def test_expected_count(self):
        tap = RateSegmentTap("d")
        tap.record_segment(0, 1000, 0.05)
        tap.record(5)
        assert tap.count == pytest.approx(51.0)

    def test_materialize_times(self):
        tap = RateSegmentTap("d")
        tap.record_segment(0, 1000, 0.01)
        times = tap.materialize_times(0, 1000)
        assert times.size == 10
        assert (np.diff(times) > 0).all()

    def test_materialize_thinning(self):
        tap = RateSegmentTap("d")
        tap.record_segment(0, 10_000, 0.1)
        times = tap.materialize_times(0, 10_000, max_events=100)
        assert times.size == 100

    def test_clear(self):
        tap = RateSegmentTap("d")
        tap.record_segment(0, 10, 1.0)
        tap.record(3)
        tap.clear()
        assert tap.count == 0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5_000),
                st.integers(1, 2_000),
                st.floats(0.001, 0.5),
            ),
            max_size=12,
        ),
        st.integers(50, 500),
    )
    def test_density_matches_bruteforce(self, segments, dt):
        tap = RateSegmentTap("d")
        t0, t1 = 0, 6_000
        for start, length, rate in segments:
            tap.record_segment(start, start + length, rate)
        fast = tap.density_counts(dt, t0, t1)
        n = -(-(t1 - t0) // dt)
        slow = np.zeros(n)
        for start, length, rate in segments:
            # Only events inside [t0, t1) count, as for explicit-time taps.
            start, end = max(start, t0), min(start + length, t1)
            for w in range(n):
                ws, we = t0 + w * dt, t0 + (w + 1) * dt
                slow[w] += max(0, min(end, we) - max(start, ws)) * rate
        assert fast.tolist() == np.floor(slow + 0.5 + 1e-6).astype(np.int64).tolist()


class TestLabeledEventTap:
    def test_records_sorted(self):
        tap = LabeledEventTap("c")
        tap.record(20, 1, 2)
        tap.record(10, 2, 1)
        times, reps, vics = tap.records()
        assert times.tolist() == [10, 20]
        assert reps.tolist() == [2, 1]
        assert vics.tolist() == [1, 2]

    def test_records_in_window(self):
        tap = LabeledEventTap("c")
        for t in range(5):
            tap.record(t * 100, 0, 1)
        times, _, _ = tap.records_in(150, 350)
        assert times.tolist() == [200, 300]

    def test_context_id_bounds(self):
        tap = LabeledEventTap("c", context_id_bits=3)
        with pytest.raises(SimulationError):
            tap.record(0, 8, 0)

    def test_misaligned_batch_raises(self):
        tap = LabeledEventTap("c")
        with pytest.raises(SimulationError):
            tap.record_batch(np.array([1, 2]), np.array([0]), np.array([1]))

    def test_count(self):
        tap = LabeledEventTap("c")
        tap.record_batch(
            np.array([1, 2, 3]), np.array([0, 0, 1]), np.array([1, 1, 0])
        )
        assert tap.count == 3
