"""Tests for the virtual clock."""

import pytest

from repro.errors import ConfigError
from repro.sim.clock import Clock


class TestClock:
    def test_quantum_in_cycles(self):
        assert Clock(2.5e9).cycles(0.1) == 250_000_000

    def test_seconds_roundtrip(self):
        clock = Clock(2.5e9)
        assert clock.seconds(clock.cycles(0.25)) == pytest.approx(0.25)

    def test_cycles_per_bit(self):
        assert Clock(2.5e9).cycles_per_bit(10.0) == 250_000_000
        assert Clock(2.5e9).cycles_per_bit(1000.0) == 2_500_000

    def test_bad_frequency(self):
        with pytest.raises(ConfigError):
            Clock(0)

    def test_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            Clock(2.5e9).cycles_per_bit(0)

    def test_repr_mentions_ghz(self):
        assert "2.50 GHz" in repr(Clock(2.5e9))
