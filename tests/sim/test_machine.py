"""Tests for the machine: process execution, op dispatch, quantum loop."""

import pytest

from repro.config import MachineConfig
from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Priority
from repro.sim.machine import Machine
from repro.sim.process import (
    BusLockBurst,
    BusSample,
    CacheAccessSeries,
    Compute,
    DividerLoop,
    DividerSaturate,
    Process,
    RandomBusLocks,
    RandomCacheTraffic,
    RandomDividerUse,
    WaitUntil,
)


def run_body(machine, body, ctx=0, priority=Priority.PRODUCER):
    proc = Process("test", body=body, priority=priority)
    machine.spawn(proc, ctx=ctx)
    machine.engine.run()
    return proc


class TestProcessLifecycle:
    def test_compute_advances_time(self, machine):
        def body(proc):
            yield Compute(1000)
            yield Compute(500)

        proc = run_body(machine, body)
        assert proc.finished
        assert proc.finish_time == 1500

    def test_wait_until(self, machine):
        def body(proc):
            yield WaitUntil(5000)

        proc = run_body(machine, body)
        assert proc.finish_time == 5000

    def test_wait_until_past_is_noop(self, machine):
        def body(proc):
            yield Compute(100)
            yield WaitUntil(50)

        proc = run_body(machine, body)
        assert proc.finish_time == 100

    def test_results_sent_into_generator(self, machine):
        seen = {}

        def body(proc):
            latencies = yield BusSample(count=5, period=100)
            seen["latencies"] = latencies

        run_body(machine, body)
        assert seen["latencies"].shape == (5,)

    def test_context_released_on_finish(self, machine):
        def body(proc):
            yield Compute(10)

        run_body(machine, body, ctx=3)
        assert machine.scheduler.occupant(3) is None

    def test_cannot_double_book_context(self, machine):
        p1 = Process("a", body=lambda p: iter(()))
        p2 = Process("b", body=lambda p: iter(()))
        machine.spawn(p1, ctx=0)
        with pytest.raises(SchedulingError):
            machine.spawn(p2, ctx=0)

    def test_core_property(self, machine):
        def body(proc):
            yield Compute(1)

        proc = run_body(machine, body, ctx=5)
        assert proc.core == 2  # 2 threads per core

    def test_unknown_op_raises(self, machine):
        def body(proc):
            yield "not-an-op"

        proc = Process("bad", body=body)
        machine.spawn(proc, ctx=0)
        with pytest.raises(SimulationError):
            machine.engine.run()


class TestOpDispatch:
    def test_bus_ops_route_to_bus(self, machine):
        def body(proc):
            yield BusLockBurst(count=3, period=1000)

        run_body(machine, body)
        assert machine.bus_lock_tap.count == 3

    def test_divider_ops_route_to_core_unit(self, machine):
        def trojan(proc):
            yield DividerSaturate(duration=100_000)

        def spy(proc):
            yield DividerLoop(iterations=100, divs_per_iter=4)

        machine.spawn(Process("t", body=trojan), ctx=2)  # core 1
        machine.spawn(
            Process("s", body=spy, priority=Priority.CONSUMER), ctx=3
        )
        machine.engine.run()
        assert machine.divider_wait_tap_for(1).count > 0
        assert machine.divider_wait_tap_for(0).count == 0

    def test_cache_series_routes_to_l2(self, machine):
        def body(proc):
            yield CacheAccessSeries(accesses=((0, 1), (0, 1)))

        run_body(machine, body)
        assert machine.l2.hits == 1
        assert machine.l2.misses == 1

    def test_random_ops_are_nonblocking(self, machine):
        def body(proc):
            yield RandomBusLocks(duration=10_000, rate_per_second=1e6)
            yield RandomDividerUse(duration=10_000, duty=0.5)
            yield RandomCacheTraffic(duration=10_000, count=10)
            yield Compute(10_000)

        proc = run_body(machine, body)
        assert proc.finish_time == 10_000  # only Compute advanced time


class TestQuantumLoop:
    def test_hooks_fire_per_quantum(self, small_machine):
        calls = []
        small_machine.on_quantum_end(
            lambda q, t0, t1: calls.append((q, t0, t1))
        )
        small_machine.run_quanta(3)
        width = small_machine.quantum_cycles
        assert calls == [
            (0, 0, width),
            (1, width, 2 * width),
            (2, 2 * width, 3 * width),
        ]

    def test_quanta_counted(self, small_machine):
        small_machine.run_quanta(2)
        small_machine.run_quanta(1)
        assert small_machine.quanta_completed == 3

    def test_bad_quanta(self, machine):
        with pytest.raises(SimulationError):
            machine.run_quanta(0)

    def test_events_within_quantum_precede_hook(self, small_machine):
        order = []

        def body(proc):
            yield Compute(small_machine.quantum_cycles // 2)
            order.append("process")

        small_machine.spawn(Process("p", body=body), ctx=0)
        small_machine.on_quantum_end(lambda q, a, b: order.append("hook"))
        small_machine.run_quanta(1)
        assert order == ["process", "hook"]


class TestTopology:
    def test_context_count(self):
        machine = Machine(MachineConfig(n_cores=2, threads_per_core=2))
        assert machine.config.n_contexts == 4
        assert len(machine.dividers) == 2

    def test_divider_tap_bounds(self, machine):
        with pytest.raises(SimulationError):
            machine.divider_wait_tap_for(99)

    def test_deterministic_given_seed(self):
        def run_once():
            machine = Machine(seed=7)

            def body(proc):
                yield RandomBusLocks(duration=10**7, rate_per_second=1e4)

            machine.spawn(Process("n", body=body), ctx=0)
            machine.engine.run()
            return machine.bus_lock_tap.times()

        assert run_once().tolist() == run_once().tolist()
