"""Window readers: the columnar taps' incremental per-quantum cursors.

Each reader consumes its tap's append-only columns exactly once while
matching the full-history read (``density_counts`` / ``records_in``)
bit for bit — the property the columnar hot path rests on
(docs/PERFORMANCE.md). These tests pin the equivalence and the loud
failure modes: rewinding cursors, taps cleared mid-stream, and events
recorded behind an already-read window.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.events import EventTap, LabeledEventTap, RateSegmentTap


class TestEventWindowReader:
    def test_read_counts_matches_density_counts(self):
        tap = EventTap("t")
        legacy = EventTap("legacy")
        rng = np.random.default_rng(3)
        reader = tap.window_reader()
        cursor = 0
        for q in range(5):
            times = np.sort(
                rng.integers(cursor, cursor + 10_000, size=200)
            ).astype(np.int64)
            tap.record_batch(times, ctx=0)
            legacy.record_batch(times, ctx=0)
            got = reader.read_counts(700, cursor, cursor + 10_000)
            want = legacy.density_counts(700, cursor, cursor + 10_000)
            np.testing.assert_array_equal(got, want)
            assert got.dtype == np.int64
            cursor += 10_000

    def test_unsorted_and_interleaved_chunks(self):
        tap = EventTap("t")
        tap.record_batch(np.array([50, 10, 90], dtype=np.int64), ctx=1)
        tap.record(20, 2)
        tap.record_batch(np.array([70, 30], dtype=np.int64), ctx=0)
        reader = tap.window_reader()
        np.testing.assert_array_equal(
            reader.read(0, 100), [10, 20, 30, 50, 70, 90]
        )

    def test_partial_window_carries_pending(self):
        tap = EventTap("t")
        tap.record_batch(np.array([5, 15, 25], dtype=np.int64), ctx=0)
        reader = tap.window_reader()
        np.testing.assert_array_equal(reader.read(0, 10), [5])
        np.testing.assert_array_equal(reader.read(10, 30), [15, 25])

    def test_mid_run_subscribe_sees_history(self):
        tap = EventTap("t")
        tap.record_batch(np.array([1, 2, 3], dtype=np.int64), ctx=0)
        reader = tap.window_reader()
        np.testing.assert_array_equal(reader.read(0, 10), [1, 2, 3])

    def test_cursor_cannot_rewind(self):
        tap = EventTap("t")
        tap.record_batch(np.array([5], dtype=np.int64), ctx=0)
        reader = tap.window_reader()
        reader.read(0, 10)
        with pytest.raises(SimulationError):
            reader.read(5, 15)

    def test_empty_window_is_fine(self):
        tap = EventTap("t")
        reader = tap.window_reader()
        assert reader.read(0, 10).size == 0
        assert reader.read_counts(5, 10, 20).tolist() == [0, 0]

    def test_late_event_behind_cursor_raises(self):
        tap = EventTap("t")
        reader = tap.window_reader()
        reader.read(0, 100)
        tap.record_batch(np.array([50], dtype=np.int64), ctx=0)
        with pytest.raises(SimulationError):
            reader.read(100, 200)

    def test_clear_mid_stream_raises(self):
        tap = EventTap("t")
        tap.record_batch(np.array([5], dtype=np.int64), ctx=0)
        reader = tap.window_reader()
        reader.read(0, 10)
        tap.clear()
        with pytest.raises(SimulationError):
            reader.read(10, 20)

    def test_full_history_reads_unaffected_by_reader(self):
        # The reader is non-destructive: trace export and figures keep
        # seeing the tap's whole history.
        tap = EventTap("t")
        tap.record_batch(np.array([5, 15], dtype=np.int64), ctx=0)
        reader = tap.window_reader()
        reader.read(0, 10)
        np.testing.assert_array_equal(tap.times(), [5, 15])
        assert tap.density_counts(10, 0, 20).tolist() == [1, 1]


class TestSegmentWindowReader:
    def test_matches_density_counts_across_quanta(self):
        tap = RateSegmentTap("d")
        legacy = RateSegmentTap("legacy")
        reader = tap.window_reader()
        # Segments straddling window boundaries, plus sparse extras.
        for start, end, rate in (
            (0, 2_500, 0.5),
            (2_500, 2_600, 2.0),
            (4_000, 11_000, 0.25),
        ):
            tap.record_segment(start, end, rate)
            legacy.record_segment(start, end, rate)
        tap.record_batch(np.array([100, 9_000], dtype=np.int64))
        legacy.record_batch(np.array([100, 9_000], dtype=np.int64))
        for q in range(3):
            t0, t1 = q * 5_000, (q + 1) * 5_000
            got = reader.read_counts(500, t0, t1)
            want = legacy.density_counts(500, t0, t1)
            np.testing.assert_array_equal(got, want)

    def test_clear_mid_stream_raises(self):
        tap = RateSegmentTap("d")
        tap.record_segment(0, 100, 1.0)
        reader = tap.window_reader()
        reader.read_counts(50, 0, 100)
        tap.clear()
        with pytest.raises(SimulationError):
            reader.read_counts(50, 100, 200)


class TestLabeledWindowReader:
    def test_matches_records_in(self):
        tap = LabeledEventTap("l2")
        legacy = LabeledEventTap("legacy")
        rng = np.random.default_rng(8)
        reader = tap.window_reader()
        cursor = 0
        for q in range(4):
            times = np.sort(
                rng.integers(cursor, cursor + 1_000, size=50)
            ).astype(np.int64)
            reps = rng.integers(0, 8, size=50).astype(np.int64)
            vics = rng.integers(0, 8, size=50).astype(np.int64)
            tap.record_batch(times, reps, vics)
            legacy.record_batch(times, reps, vics)
            got = reader.read(cursor, cursor + 1_000)
            want = legacy.records_in(cursor, cursor + 1_000)
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g, w)
            cursor += 1_000

    def test_tie_order_matches_record_order(self):
        tap = LabeledEventTap("l2")
        legacy = LabeledEventTap("legacy")
        for t, r, v in ((10, 1, 2), (10, 3, 4), (10, 5, 6)):
            tap.record(t, r, v)
            legacy.record(t, r, v)
        got = tap.window_reader().read(0, 20)
        want = legacy.records_in(0, 20)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)

    def test_cursor_cannot_rewind(self):
        tap = LabeledEventTap("l2")
        tap.record(5, 0, 1)
        reader = tap.window_reader()
        reader.read(0, 10)
        with pytest.raises(SimulationError):
            reader.read(0, 10)
