"""Exact-parity proof: vectorized cache kernels vs legacy per-access loop.

The batched ``access_series``/``random_traffic`` kernels
(``SharedCache(vectorized=True)``, the default) must be *bit-identical*
to the legacy per-access path — same labeled event trains, same
verdicts, same evidence bundles, same counters, same jitter-pool (RNG)
stepping — on full audited sessions and on direct cache workloads, with
and without fault injectors, for both tracker designs, and through the
mitigation wrappers that monkey-patch the cache (docs/PERFORMANCE.md,
"Simulator hot path").
"""

import numpy as np
import pytest

from repro.analysis.figures import run_channel_session
from repro.config import CacheConfig
from repro.faults.injectors import BitFlipInjector, DropInjector
from repro.hardware.conflict_tracker import (
    GenerationConflictTracker,
    IdealLRUConflictTracker,
)
from repro.mitigation.partition import _WayPartition
from repro.obs.metrics import MetricsRegistry
from repro.sim.events import LabeledEventTap
from repro.sim.resources.cache import SharedCache
from repro.traces import export_traces, load_traces
from repro.util.bitstream import Message

pytestmark = pytest.mark.parity

COUNT_METRICS = (
    "cchunter_source_observations_total",
    "cchunter_source_channel_events_total",
    "cchunter_source_conflict_records_total",
    "cchunter_session_quanta_total",
    "cchunter_analyzer_windows_total",
    "cchunter_analyzer_events_total",
    "cchunter_analyzer_train_events_total",
)

#: Both channel families exercise the cache: 'cache' through the covert
#: sweep/probe series, 'membus' through the background noise traffic.
KINDS = ("membus", "cache")


def _run(kind, vectorized, injectors=(), capture_evidence=True):
    metrics = MetricsRegistry()
    run = run_channel_session(
        kind,
        Message.random(12, 7),
        bandwidth_bps=100.0,
        seed=11,
        max_quanta=12,
        track_detection_latency=True,
        injectors=injectors,
        capture_evidence=capture_evidence,
        metrics=metrics,
        cache_vectorized=vectorized,
    )
    return run, metrics


def _count_metrics(metrics):
    dump = metrics.to_dict()["metrics"]
    return {
        name: dump[name]["series"]
        for name in COUNT_METRICS
        if name in dump
    }


def _evidence_dicts(hunter):
    return {
        unit: bundle.to_dict()
        for unit, bundle in hunter.session.evidence().items()
    }


def _cache_event_train(machine):
    times, replacers, victims = machine.cache_miss_tap.records()
    return times.tolist(), replacers.tolist(), victims.tolist()


class TestSessionParity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_verdicts_evidence_and_metrics_identical(self, kind):
        run_vec, m_vec = _run(kind, vectorized=True)
        run_leg, m_leg = _run(kind, vectorized=False)
        assert (
            run_vec.hunter.report().to_dict()
            == run_leg.hunter.report().to_dict()
        )
        assert _evidence_dicts(run_vec.hunter) == _evidence_dicts(
            run_leg.hunter
        )
        assert _count_metrics(m_vec) == _count_metrics(m_leg)

    @pytest.mark.parametrize("kind", KINDS)
    def test_labeled_event_trains_identical(self, kind):
        run_vec, _ = _run(kind, vectorized=True)
        run_leg, _ = _run(kind, vectorized=False)
        assert _cache_event_train(run_vec.machine) == _cache_event_train(
            run_leg.machine
        )
        vec_l2, leg_l2 = run_vec.machine.l2, run_leg.machine.l2
        assert (vec_l2.hits, vec_l2.misses, vec_l2.conflict_misses) == (
            leg_l2.hits,
            leg_l2.misses,
            leg_l2.conflict_misses,
        )
        assert vec_l2._jitter_idx == leg_l2._jitter_idx

    @pytest.mark.parametrize("kind", KINDS)
    def test_tracker_state_identical(self, kind):
        run_vec, _ = _run(kind, vectorized=True)
        run_leg, _ = _run(kind, vectorized=False)
        vec_tr = run_vec.machine.l2.tracker
        leg_tr = run_leg.machine.l2.tracker
        assert vec_tr._current == leg_tr._current
        assert vec_tr._gen_bits == leg_tr._gen_bits
        assert vec_tr._accessed_in_current == leg_tr._accessed_in_current
        for vec_bloom, leg_bloom in zip(vec_tr._blooms, leg_tr._blooms):
            assert vec_bloom._words == leg_bloom._words

    @pytest.mark.parametrize("kind", KINDS)
    def test_verdicts_identical_under_injection(self, kind):
        def injectors():
            return (
                DropInjector(p=0.2, seed=5),
                BitFlipInjector(p=0.05, seed=9),
            )

        run_vec, m_vec = _run(kind, vectorized=True, injectors=injectors())
        run_leg, m_leg = _run(kind, vectorized=False, injectors=injectors())
        assert (
            run_vec.hunter.report().to_dict()
            == run_leg.hunter.report().to_dict()
        )
        assert _evidence_dicts(run_vec.hunter) == _evidence_dicts(
            run_leg.hunter
        )
        assert _count_metrics(m_vec) == _count_metrics(m_leg)

    def test_exported_archives_identical(self, tmp_path):
        run_vec, _ = _run("cache", vectorized=True, capture_evidence=False)
        run_leg, _ = _run("cache", vectorized=False, capture_evidence=False)
        p_vec = tmp_path / "vec.npz"
        p_leg = tmp_path / "leg.npz"
        export_traces(run_vec.machine, p_vec)
        export_traces(run_leg.machine, p_leg)
        a, b = load_traces(p_vec), load_traces(p_leg)
        np.testing.assert_array_equal(a.cache_times, b.cache_times)
        np.testing.assert_array_equal(a.bus_lock_times, b.bus_lock_times)


def _make_cache(vectorized, tracker_factory, seed=23):
    config = CacheConfig(size_bytes=64 * 1024)  # 128 sets x 8 ways
    tracker = tracker_factory(config.n_sets * config.associativity)
    tap = LabeledEventTap("parity")
    cache = SharedCache(
        config,
        tracker,
        tap,
        np.random.default_rng(seed),
        vectorized=vectorized,
    )
    return cache, tap


def _mixed_workload(cache):
    """Interleaved singles, tuple series, ndarray series, random traffic.

    Covers both fused loop bodies (hit-heavy series after warmup,
    miss-heavy thrash series) and the RNG draw order of
    ``random_traffic``. Returns the observable outputs.
    """
    rng = np.random.default_rng(41)
    outputs = []
    t = 0
    # Warmup fills + a hit-heavy hot set (exercises the hit-sampled body).
    hot = [(int(s), int(g)) for s in range(16) for g in range(8)]
    for _ in range(3):
        t, lat = cache.access_series(0, tuple(hot), 8, t)
        outputs.append(lat.tolist())
    # Miss-heavy thrash: 9 tags cycling through 8 ways (miss-sampled body).
    thrash = [(int(s), int(100 + (i + s) % 9)) for i in range(40)
              for s in range(8)]
    t, lat = cache.access_series(1, np.asarray(thrash, dtype=np.int64), 8, t)
    outputs.append(lat.tolist())
    # Per-access adapter interleaved with series work.
    for i in range(50):
        latency, hit = cache.access(2, int(rng.integers(0, 128)),
                                    int(rng.integers(0, 4)), t)
        outputs.append((latency, hit))
        t += latency
    # Random noise traffic (three RNG draws + jitter stepping).
    t = cache.random_traffic(3, t, 50_000, 400, set_lo=0, set_hi=64,
                             tag_space=16)
    # One more hit-heavy pass so post-traffic state differences surface.
    t, lat = cache.access_series(0, tuple(hot), 8, t)
    outputs.append(lat.tolist())
    return outputs, t


def _state_fingerprint(cache, tap):
    times, replacers, victims = tap.records()
    fp = {
        "counters": (cache.hits, cache.misses, cache.conflict_misses),
        "jitter_idx": cache._jitter_idx,
        "occupancy": cache.occupancy,
        "train": (times.tolist(), replacers.tolist(), victims.tolist()),
        "sets": [dict(s) for s in cache._sets],
    }
    tracker = cache.tracker
    if isinstance(tracker, GenerationConflictTracker):
        fp["tracker"] = (
            tracker._current,
            tracker._accessed_in_current,
            dict(tracker._gen_bits),
            [list(b._words) for b in tracker._blooms],
        )
    return fp


class TestDirectCacheParity:
    @pytest.mark.parametrize(
        "tracker_factory",
        (GenerationConflictTracker, IdealLRUConflictTracker),
        ids=("generation", "ideal-lru"),
    )
    def test_mixed_workload_identical(self, tracker_factory):
        cache_vec, tap_vec = _make_cache(True, tracker_factory)
        cache_leg, tap_leg = _make_cache(False, tracker_factory)
        out_vec, end_vec = _mixed_workload(cache_vec)
        out_leg, end_leg = _mixed_workload(cache_leg)
        assert out_vec == out_leg
        assert end_vec == end_leg
        assert _state_fingerprint(cache_vec, tap_vec) == _state_fingerprint(
            cache_leg, tap_leg
        )

    def test_empty_and_single_series(self):
        cache_vec, _ = _make_cache(True, GenerationConflictTracker)
        cache_leg, _ = _make_cache(False, GenerationConflictTracker)
        for cache in (cache_vec, cache_leg):
            end, lat = cache.access_series(0, (), 8, 100)
            assert end == 100 and lat.size == 0
        end_vec, lat_vec = cache_vec.access_series(0, ((3, 7),), 5, 100)
        end_leg, lat_leg = cache_leg.access_series(0, ((3, 7),), 5, 100)
        assert end_vec == end_leg
        assert lat_vec.tolist() == lat_leg.tolist()

    def test_bad_set_index_raises_both_paths(self):
        from repro.errors import SimulationError

        for vectorized in (True, False):
            cache, _ = _make_cache(vectorized, GenerationConflictTracker)
            with pytest.raises(SimulationError):
                cache.access_series(0, ((100_000, 1),), 8, 0)


class TestMitigationFallback:
    def test_partition_wrapper_disables_batch_kernel(self):
        cache, _ = _make_cache(True, GenerationConflictTracker)
        assert cache._use_batch_kernel()
        partition = _WayPartition(
            cache, {0: 0, 1: 1, 2: 2, 3: 2}, {0: 2, 1: 2, 2: 4}
        )
        assert not cache._use_batch_kernel()
        partition.remove()
        assert cache._use_batch_kernel()

    def test_partitioned_series_identical_both_paths(self):
        results = []
        for vectorized in (True, False):
            cache, tap = _make_cache(vectorized, GenerationConflictTracker)
            _WayPartition(
                cache, {0: 0, 1: 1, 2: 2, 3: 2}, {0: 2, 1: 2, 2: 4}
            )
            t = 0
            lats = []
            for ctx in (0, 1, 0, 1):
                pattern = tuple(
                    (s, 10 + ctx) for s in range(8) for _ in range(3)
                )
                t, lat = cache.access_series(ctx, pattern, 8, t)
                lats.append(lat.tolist())
            results.append(
                (lats, t, cache.hits, cache.misses, tap.records()[0].tolist())
            )
        assert results[0] == results[1]
