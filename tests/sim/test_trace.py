"""Tests for windowed trace views."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import BusLockBurst, Process
from repro.sim.trace import (
    bus_lock_train,
    conflict_miss_records,
    quantum_windows,
)


class TestQuantumWindows:
    def test_full_quanta(self, small_machine):
        windows = quantum_windows(small_machine, 3)
        width = small_machine.quantum_cycles
        assert len(windows) == 3
        assert windows[0].start == 0
        assert windows[-1].end == 3 * width
        assert all(w.length == width for w in windows)

    def test_fractional_windows(self, small_machine):
        windows = quantum_windows(small_machine, 2, fraction=0.5)
        assert len(windows) == 4
        assert windows[0].length == small_machine.quantum_cycles // 2

    def test_indices_sequential(self, small_machine):
        windows = quantum_windows(small_machine, 2, fraction=0.25)
        assert [w.index for w in windows] == list(range(8))

    def test_bad_fraction(self, small_machine):
        with pytest.raises(SimulationError):
            quantum_windows(small_machine, 1, fraction=0.0)

    def test_bad_quanta(self, small_machine):
        with pytest.raises(SimulationError):
            quantum_windows(small_machine, 0)


class TestTrainExtraction:
    def test_bus_lock_train(self, small_machine):
        def body(proc):
            yield BusLockBurst(count=10, period=100)

        small_machine.spawn(Process("t", body=body), ctx=0)
        small_machine.run_quanta(1)
        window = quantum_windows(small_machine, 1)[0]
        assert bus_lock_train(small_machine, window).size == 10

    def test_conflict_records_empty(self, small_machine):
        small_machine.run_quanta(1)
        window = quantum_windows(small_machine, 1)[0]
        times, reps, vics = conflict_miss_records(small_machine, window)
        assert times.size == reps.size == vics.size == 0


class TestDividerWindows:
    def test_divider_wait_counts(self, small_machine):
        from repro.sim.process import DividerLoop, DividerSaturate
        from repro.sim.engine import Priority
        from repro.sim.trace import divider_wait_counts

        def trojan(proc):
            yield DividerSaturate(duration=100_000)

        def spy(proc):
            yield DividerLoop(iterations=800, divs_per_iter=4)

        small_machine.spawn(Process("t", body=trojan), ctx=0)
        small_machine.spawn(
            Process("s", body=spy, priority=Priority.CONSUMER), ctx=1
        )
        small_machine.run_quanta(1)
        window = quantum_windows(small_machine, 1)[0]
        counts = divider_wait_counts(small_machine, 0, window, dt=500)
        assert counts.sum() > 0
        assert counts.size == -(-window.length // 500)


def test_iter_windows_matches_list(small_machine):
    from repro.sim.trace import iter_windows

    assert list(iter_windows(small_machine, 2, fraction=0.5)) == (
        quantum_windows(small_machine, 2, fraction=0.5)
    )
