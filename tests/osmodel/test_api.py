"""Tests for the privileged audit API."""

import pytest

from repro.core.detector import AuditUnit, CCHunter
from repro.errors import AuthorizationError, HardwareError
from repro.osmodel.api import AuditAPI, User


@pytest.fixture
def api(small_machine):
    return AuditAPI(CCHunter(small_machine))


ADMIN = User("root", is_admin=True)
MALLORY = User("mallory", is_admin=False)


class TestAuthorization:
    def test_admin_allowed(self, api):
        grant = api.request_audit(ADMIN, AuditUnit.MEMORY_BUS)
        assert grant.unit == "membus"
        assert grant.user == "root"

    def test_non_admin_rejected(self, api):
        with pytest.raises(AuthorizationError):
            api.request_audit(MALLORY, AuditUnit.MEMORY_BUS)

    def test_rejected_request_leaves_no_grant(self, api):
        with pytest.raises(AuthorizationError):
            api.request_audit(MALLORY, AuditUnit.MEMORY_BUS)
        assert api.grants == ()

    def test_grants_accumulate(self, api):
        api.request_audit(ADMIN, AuditUnit.MEMORY_BUS)
        api.request_audit(ADMIN, AuditUnit.DIVIDER, core=1)
        assert len(api.grants) == 2
        assert api.grants[1].core == 1

    def test_hardware_limit_still_applies(self, api):
        api.request_audit(ADMIN, AuditUnit.MEMORY_BUS)
        api.request_audit(ADMIN, AuditUnit.DIVIDER, core=0)
        with pytest.raises(HardwareError):
            api.request_audit(ADMIN, AuditUnit.CACHE)
