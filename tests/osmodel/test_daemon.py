"""Tests for the CC-Hunter daemon's bookkeeping."""

import pytest

from repro.core.detector import AuditUnit, CCHunter
from repro.errors import SchedulingError
from repro.osmodel.daemon import (
    AUTOCORR_COST_S,
    CLUSTERING_COST_REDUCED_S,
    CLUSTERING_COST_S,
    CCHunterDaemon,
)


def make_daemon(machine, **kwargs):
    hunter = CCHunter(machine)
    hunter.audit(AuditUnit.MEMORY_BUS)
    return CCHunterDaemon(machine, hunter, **kwargs)


class TestAccounting:
    def test_quanta_observed(self, small_machine):
        daemon = make_daemon(small_machine)
        small_machine.run_quanta(5)
        assert daemon.stats.quanta_observed == 5
        assert daemon.stats.autocorr_invocations == 5

    def test_clustering_cadence(self, small_machine):
        daemon = make_daemon(small_machine, clustering_period_quanta=4)
        small_machine.run_quanta(9)
        assert daemon.stats.clustering_invocations == 2

    def test_analysis_cost_reduced(self, small_machine):
        daemon = make_daemon(
            small_machine, clustering_period_quanta=2,
            use_dimension_reduction=True,
        )
        small_machine.run_quanta(2)
        expected = 2 * AUTOCORR_COST_S + CLUSTERING_COST_REDUCED_S
        assert daemon.stats.analysis_cpu_seconds == pytest.approx(expected)

    def test_analysis_cost_full(self, small_machine):
        daemon = make_daemon(
            small_machine, clustering_period_quanta=2,
            use_dimension_reduction=False,
        )
        small_machine.run_quanta(2)
        expected = 2 * AUTOCORR_COST_S + CLUSTERING_COST_S
        assert daemon.stats.analysis_cpu_seconds == pytest.approx(expected)

    def test_overhead_fraction_small_at_paper_cadence(self, machine):
        """At the paper's numbers the daemon costs ~1% of wall time."""
        daemon = make_daemon(machine)
        machine.run_quanta(2)
        assert daemon.overhead_fraction() < 0.02

    def test_overhead_zero_before_run(self, small_machine):
        daemon = make_daemon(small_machine)
        assert daemon.overhead_fraction() == 0.0


class TestMonitorPlacement:
    def test_picks_unaudited_core(self, small_machine):
        daemon = make_daemon(small_machine)
        core = daemon.place_monitor(audited_cores={0, 1})
        assert core == 2
        assert daemon.stats.monitor_core == 2

    def test_all_cores_audited(self, small_machine):
        daemon = make_daemon(small_machine)
        with pytest.raises(SchedulingError):
            daemon.place_monitor(audited_cores={0, 1, 2, 3})


class TestReport:
    def test_report_delegates(self, small_machine):
        daemon = make_daemon(small_machine)
        small_machine.run_quanta(1)
        report = daemon.report()
        assert report.verdicts[0].unit == "membus"
