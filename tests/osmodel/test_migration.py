"""Tests for migration-aware context unification."""

import numpy as np

from repro.channels.base import ChannelConfig
from repro.channels.cache import CacheCovertChannel
from repro.core.event_train import dominant_pair_series
from repro.osmodel.migration import ContextTimeline, unify_conflict_records
from repro.sim.machine import Machine
from repro.sim.process import Compute, Process
from repro.util.bitstream import Message


class TestContextTimeline:
    def test_initial_placement(self, machine):
        proc = Process("a", body=lambda p: iter(()))
        machine.spawn(proc, ctx=3)
        timeline = ContextTimeline(machine)
        assert timeline.process_of(3, 0) == "a"
        assert timeline.process_of(5, 0) is None

    def test_migration_switches_occupant(self, machine):
        def body(proc):
            yield Compute(1000)

        proc = Process("mover", body=body)
        machine.spawn(proc, ctx=0)
        machine.engine.run()
        machine.scheduler.migrate(proc, new_ctx=4, time=500)
        timeline = ContextTimeline(machine)
        assert timeline.process_of(0, 100) == "mover"
        assert timeline.process_of(4, 600) == "mover"
        assert timeline.process_of(4, 100) is None

    def test_chained_migrations(self, machine):
        proc = Process("hopper", body=lambda p: iter(()))
        machine.spawn(proc, ctx=0)
        machine.scheduler.migrate(proc, 2, time=100)
        machine.scheduler.migrate(proc, 5, time=200)
        timeline = ContextTimeline(machine)
        assert timeline.process_of(0, 50) == "hopper"
        assert timeline.process_of(2, 150) == "hopper"
        assert timeline.process_of(5, 250) == "hopper"


class TestUnifyConflictRecords:
    def test_remaps_across_migration(self, machine):
        proc_a = Process("trojan", body=lambda p: iter(()))
        proc_b = Process("spy", body=lambda p: iter(()))
        machine.spawn(proc_a, ctx=0)
        machine.spawn(proc_b, ctx=2)
        machine.scheduler.migrate(proc_a, 4, time=1_000)
        times = np.array([500, 2_000])
        reps = np.array([0, 4])   # same process, different contexts
        vics = np.array([2, 2])
        rep_pids, vic_pids, pid_of = unify_conflict_records(
            machine, times, reps, vics
        )
        assert rep_pids[0] == rep_pids[1] == pid_of["trojan"]
        assert (vic_pids == pid_of["spy"]).all()

    def test_untracked_contexts_stable(self, machine):
        machine.spawn(Process("p", body=lambda p: iter(())), ctx=0)
        times = np.array([10, 20])
        reps = np.array([6, 6])
        vics = np.array([0, 0])
        rep_pids, _, pid_of = unify_conflict_records(
            machine, times, reps, vics
        )
        assert rep_pids[0] == rep_pids[1]
        assert rep_pids[0] >= len(pid_of)


class TestMigrationEndToEnd:
    def test_channel_pair_unified_despite_migration(self):
        """The covert pair stays identifiable after the trojan migrates
        mid-transmission (the paper's Section V-A claim)."""
        machine = Machine(seed=8)
        channel = CacheCovertChannel(
            machine,
            ChannelConfig(message=Message.from_bits([1, 0] * 6),
                          bandwidth_bps=500.0),
            n_sets_total=32,
        )
        channel.deploy()  # trojan ctx 0, spy ctx 2
        midpoint = channel.bit_start(6)
        machine.engine.schedule(
            midpoint,
            lambda: machine.scheduler.migrate(
                channel.trojan, new_ctx=4, time=midpoint
            ),
        )
        machine.run_until(channel.transmission_end + 1)

        times, reps, vics = machine.cache_miss_tap.records()
        # Raw contexts: the trojan appears as ctx 0 then ctx 4.
        raw_pairs = set(zip(reps.tolist(), vics.tolist()))
        assert any(r == 4 or v == 4 for r, v in raw_pairs)

        rep_pids, vic_pids, pid_of = unify_conflict_records(
            machine, times, reps, vics
        )
        labels, idx, pair = dominant_pair_series(
            rep_pids, vic_pids, context_id_bits=6
        )
        trojan_pid = pid_of[channel.trojan.name]
        spy_pid = pid_of[channel.spy.name]
        assert set(pair) == {trojan_pid, spy_pid}
        # Unified, the pair's series covers (nearly) the whole train.
        assert labels.size > 0.9 * times.size
