"""Tests for the trial-execution runner: determinism, chunking, metrics,
crash retry. Trial functions live at module level so workers can
unpickle them by qualified name."""

import os

import numpy as np
import pytest

from repro.exec import (
    ExecError,
    TrialRunner,
    TrialSpec,
    default_chunk_size,
    resolve_jobs,
    run_trials,
    trial_seed,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, get_default


def tenfold(index):
    return index * 10


def draw(seed, scale=1.0):
    """A stochastic trial: a pure function of its derived seed."""
    rng = np.random.default_rng(seed)
    return float(rng.normal() * scale)


def instrumented(index):
    """A trial that counts itself on the ambient default registry."""
    get_default().counter("test_trials_ran_total").inc()
    get_default().gauge("test_last_index").set(index)
    return index


def failing(index):
    if index == 2:
        raise ValueError("trial 2 exploded")
    return index


def crash_until_flagged(index, flag_dir):
    """Die like an OOM-killed worker once, succeed on the retry."""
    flag = os.path.join(flag_dir, f"{index}.flag")
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(17)
    return index


def crash_always(index):
    os._exit(23)


class TestTrialSeed:
    def test_pure_function_of_inputs(self):
        assert trial_seed(1, "fig12", 7) == trial_seed(1, "fig12", 7)

    def test_distinct_across_index_key_base(self):
        seeds = {
            trial_seed(1, "a", 0), trial_seed(1, "a", 1),
            trial_seed(1, "b", 0), trial_seed(2, "a", 0),
        }
        assert len(seeds) == 4


class TestTrialSpec:
    def test_seed_injected_per_index(self):
        spec = TrialSpec(fn=draw, seed=9, key="k")
        kw0 = spec.kwargs_for(0, {})
        kw1 = spec.kwargs_for(1, {})
        assert kw0["seed"] == trial_seed(9, "k", 0)
        assert kw1["seed"] == trial_seed(9, "k", 1)

    def test_per_trial_override_wins(self):
        spec = TrialSpec(fn=draw, common={"scale": 2.0}, seed=9)
        kw = spec.kwargs_for(0, {"seed": 42, "scale": 3.0})
        assert kw == {"seed": 42, "scale": 3.0}

    def test_no_seed_when_unset(self):
        spec = TrialSpec(fn=tenfold)
        assert spec.kwargs_for(5, {"index": 5}) == {"index": 5}


class TestRunTrialsSerial:
    def test_results_in_canonical_order(self):
        spec = TrialSpec(fn=tenfold)
        results = run_trials(spec, params=[{"index": i} for i in range(7)])
        assert results == [0, 10, 20, 30, 40, 50, 60]

    def test_n_generates_empty_param_dicts(self):
        spec = TrialSpec(fn=draw, seed=3, key="n")
        assert run_trials(spec, n=4) == [
            draw(trial_seed(3, "n", i)) for i in range(4)
        ]

    def test_n_params_mismatch_rejected(self):
        with pytest.raises(ExecError):
            run_trials(TrialSpec(fn=tenfold), n=2, params=[{"index": 0}])

    def test_neither_n_nor_params_rejected(self):
        with pytest.raises(ExecError):
            run_trials(TrialSpec(fn=tenfold))

    def test_empty_sweep(self):
        assert run_trials(TrialSpec(fn=tenfold), n=0) == []

    def test_exception_propagates(self):
        spec = TrialSpec(fn=failing)
        with pytest.raises(ValueError, match="trial 2"):
            run_trials(spec, params=[{"index": i} for i in range(4)])


class TestJobsEquivalence:
    def test_serial_equals_pooled(self):
        spec = TrialSpec(fn=draw, seed=11, key="eq")
        serial = run_trials(spec, n=9)
        pooled = run_trials(spec, n=9, jobs=2, chunk_size=2)
        assert serial == pooled

    def test_chunk_size_does_not_change_results(self):
        spec = TrialSpec(fn=draw, seed=11, key="eq")
        assert run_trials(spec, n=9) == run_trials(spec, n=9, chunk_size=4)

    def test_pooled_exception_propagates(self):
        spec = TrialSpec(fn=failing)
        with pytest.raises(ValueError):
            run_trials(
                spec, params=[{"index": i} for i in range(4)],
                jobs=2, chunk_size=1,
            )


class TestChunking:
    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(1, 4) == 1
        assert default_chunk_size(1000, 1) == 32  # capped
        # 4 chunks per worker: 64 trials over 2 workers -> 8 per chunk.
        assert default_chunk_size(64, 2) == 8

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ExecError):
            resolve_jobs(-1)

    def test_bad_runner_knobs_rejected(self):
        with pytest.raises(ExecError):
            TrialRunner(chunk_size=0)
        with pytest.raises(ExecError):
            TrialRunner(max_chunk_retries=-1)


class TestProgressAndMetrics:
    def test_progress_reaches_total(self):
        calls = []
        runner = TrialRunner(
            jobs=1, chunk_size=2, progress=lambda d, t: calls.append((d, t))
        )
        runner.run_trials(TrialSpec(fn=tenfold),
                          params=[{"index": i} for i in range(5)])
        assert calls == [(2, 5), (4, 5), (5, 5)]

    def test_trial_metrics_recorded_in_parent(self):
        registry = MetricsRegistry()
        runner = TrialRunner(jobs=1, metrics=registry)
        runner.run_trials(TrialSpec(fn=tenfold, key="m"),
                          params=[{"index": i} for i in range(6)])
        assert registry.counter(
            "cchunter_exec_trials_total", labels={"spec": "m"}
        ).value == 6
        snapshot = registry.to_dict()
        timer = snapshot["metrics"]["cchunter_trial_seconds"]
        assert timer["series"][0]["labels"] == {"spec": "m"}
        assert timer["series"][0]["count"] == 6

    def test_worker_registry_snapshots_merged(self):
        for jobs in (1, 2):
            registry = MetricsRegistry()
            runner = TrialRunner(jobs=jobs, chunk_size=2, metrics=registry)
            runner.run_trials(
                TrialSpec(fn=instrumented, key="inst"),
                params=[{"index": i} for i in range(5)],
            )
            # Counters incremented inside workers sum in the parent.
            assert registry.counter("test_trials_ran_total").value == 5
            # The trial-timing histogram saw every trial.
            snapshot = registry.to_dict()
            timer = snapshot["metrics"]["cchunter_trial_seconds"]
            assert timer["series"][0]["count"] == 5

    def test_null_registry_accepted(self):
        runner = TrialRunner(jobs=1, metrics=NULL_REGISTRY)
        results = runner.run_trials(
            TrialSpec(fn=tenfold), params=[{"index": 1}]
        )
        assert results == [10]


class TestCrashRetry:
    def test_crashed_chunk_retried_and_recovers(self, tmp_path):
        spec = TrialSpec(fn=crash_until_flagged,
                         common={"flag_dir": str(tmp_path)})
        registry = MetricsRegistry()
        runner = TrialRunner(
            jobs=2, chunk_size=1, max_chunk_retries=2, metrics=registry
        )
        results = runner.run_trials(
            spec, params=[{"index": i} for i in range(3)]
        )
        assert results == [0, 1, 2]
        retries = registry.counter(
            "cchunter_exec_chunk_retries_total",
            labels={"spec": "crash_until_flagged"},
        ).value
        assert retries >= 1

    def test_persistent_crash_exhausts_retries(self):
        runner = TrialRunner(jobs=2, chunk_size=1, max_chunk_retries=1)
        with pytest.raises(ExecError, match="crashed"):
            runner.run_trials(
                TrialSpec(fn=crash_always),
                params=[{"index": i} for i in range(2)],
            )


def spanning(index):
    """A trial that emits nested spans for the stage profiler."""
    from repro.obs.tracing import trace_span

    with trace_span("trial.outer", quantum=index):
        with trace_span("trial.inner", quantum=index):
            pass
    return index


class TestProfileMerge:
    """Worker profile snapshots merge into the parent profiler in the
    same canonical chunk order as metrics snapshots."""

    @pytest.fixture(autouse=True)
    def _profiling_off(self):
        from repro.obs.profile import disable_profiling

        disable_profiling()
        yield
        disable_profiling()

    def _profiled_run(self, jobs):
        from repro.obs.profile import disable_profiling, enable_profiling

        profiler = enable_profiling()
        try:
            runner = TrialRunner(jobs=jobs, chunk_size=2,
                                 metrics=NULL_REGISTRY)
            results = runner.run_trials(
                TrialSpec(fn=spanning, key="prof"),
                params=[{"index": i} for i in range(6)],
            )
        finally:
            disable_profiling()
        assert results == list(range(6))
        return profiler.to_dict()

    def test_pooled_profile_matches_serial_structure(self):
        serial = self._profiled_run(jobs=1)
        pooled = self._profiled_run(jobs=2)
        for doc in (serial, pooled):
            by_path = {tuple(e["path"]): e for e in doc["stages"]}
            assert by_path[("trial.outer",)]["calls"] == 6
            assert by_path[("trial.outer", "trial.inner")]["calls"] == 6
        # Per-quantum rows come back in canonical trial order even when
        # chunks complete out of order across workers.
        for doc in (serial, pooled):
            assert [r["quantum"] for r in doc["quanta"]["rows"]] == (
                list(range(6))
            )

    def test_no_parent_profiler_means_no_snapshots(self):
        runner = TrialRunner(jobs=2, chunk_size=2, metrics=NULL_REGISTRY)
        results = runner.run_trials(
            TrialSpec(fn=spanning, key="prof"),
            params=[{"index": i} for i in range(4)],
        )
        assert results == list(range(4))
