"""jobs=1 vs jobs=4 equivalence for every rewired figure sweep.

The determinism contract of ``repro.exec``: per-trial seeds are pure
functions of the trial parameters and results are gathered in canonical
order, so a sweep returns *bit-identical* results no matter how many
worker processes run it. These tests hold each rewired figure to that —
same likelihood ratios, same verdicts, same histograms/correlograms,
same ordering — and run in tier-1 (marked ``equivalence``).
"""

import numpy as np
import pytest

from repro.analysis import figures as F

pytestmark = pytest.mark.equivalence

JOBS = 4


def assert_same_dataclass(a, b, exact_arrays=True):
    """Field-by-field bitwise equality of two result dataclasses."""
    assert type(a) is type(b)
    for name in vars(a):
        va, vb = getattr(a, name), getattr(b, name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), name
        elif hasattr(va, "__dataclass_fields__"):
            assert_same_dataclass(va, vb)
        else:
            assert va == vb, name


class TestFig10Equivalence:
    def test_bandwidth_sweep_identical(self):
        kwargs = dict(bandwidths=(10.0,), n_bits=6, cache_sets=32)
        serial = F.fig10_bandwidth_sweep(**kwargs)
        pooled = F.fig10_bandwidth_sweep(jobs=JOBS, **kwargs)
        assert len(serial) == len(pooled) == 3
        for a, b in zip(serial, pooled):
            assert_same_dataclass(a, b)


class TestFig11Equivalence:
    def test_window_scaling_identical(self):
        kwargs = dict(
            fractions=(1.0, 0.25), n_bits=2, bandwidth_bps=2.0,
            cache_sets=64, max_lag=400,
        )
        serial = F.fig11_window_scaling(**kwargs)
        pooled = F.fig11_window_scaling(jobs=JOBS, **kwargs)
        assert [vars(p) for p in serial] == [vars(p) for p in pooled]
        assert [p.fraction for p in serial] == [1.0, 0.25]


class TestFig12Equivalence:
    def test_message_sweep_identical(self):
        kwargs = dict(n_messages=2, n_bits=6, cache_sets=64)
        serial = F.fig12_message_sweep(**kwargs)
        pooled = F.fig12_message_sweep(jobs=JOBS, **kwargs)
        assert len(serial) == len(pooled) == 3
        for a, b in zip(serial, pooled):
            assert a.kind == b.kind
            assert a.likelihood_ratios == b.likelihood_ratios
            assert a.cache_peaks == b.cache_peaks
            assert np.array_equal(a.mean_hist, b.mean_hist)
            assert np.array_equal(a.min_hist, b.min_hist)
            assert np.array_equal(a.max_hist, b.max_hist)


class TestFig13Equivalence:
    def test_set_sweep_identical(self):
        kwargs = dict(set_counts=(64, 32), n_bits=6)
        serial = F.fig13_cache_set_sweep(**kwargs)
        pooled = F.fig13_cache_set_sweep(jobs=JOBS, **kwargs)
        assert [r.n_sets for r in serial] == [64, 32]
        for a, b in zip(serial, pooled):
            assert a.peak_lag == b.peak_lag
            assert a.peak_value == b.peak_value
            assert np.array_equal(a.acf, b.acf)
            assert np.array_equal(a.times, b.times)
            assert a.analysis.significant == b.analysis.significant


class TestFig14Equivalence:
    def test_false_alarms_identical(self):
        from repro.workloads.spec import gobmk, sjeng
        from repro.workloads.stream import stream

        pairs = [(gobmk, sjeng), (stream, stream)]
        serial = F.fig14_false_alarms(pairs=pairs, n_quanta=3)
        pooled = F.fig14_false_alarms(pairs=pairs, n_quanta=3, jobs=JOBS)
        assert [r.pair for r in serial] == [
            ("gobmk", "sjeng"), ("stream", "stream")
        ]
        for a, b in zip(serial, pooled):
            assert_same_dataclass(a, b)
