"""Tests for per-trial timeouts and failure recording in TrialRunner."""

import time

import pytest

from repro.exec import TrialFailure, TrialRunner, TrialSpec, run_trials

pytestmark = pytest.mark.resilience


def _quick(value=0, **_kw):
    return value


def _sleepy(duration=0.0, value=0, **_kw):
    time.sleep(duration)
    return value


def _angry(message="bad trial", **_kw):
    raise ValueError(message)


def _mixed(index=0, **_kw):
    if index == 1:
        raise ValueError("trial one always fails")
    if index == 2:
        time.sleep(5.0)
    return index


class TestWorkerTimeout:
    def test_timed_out_trial_recorded_in_slot(self):
        spec = TrialSpec(fn=_sleepy, key="t", timeout_s=0.2)
        results = run_trials(spec, params=[
            {"duration": 0.0, "value": 10},
            {"duration": 5.0, "value": 11},
            {"duration": 0.0, "value": 12},
        ])
        assert results[0] == 10 and results[2] == 12
        failure = results[1]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == "timeout"
        assert failure.index == 1
        assert failure.elapsed_s < 2.0  # the alarm cut the sleep short

    def test_raised_trial_recorded_not_propagated(self):
        spec = TrialSpec(fn=_angry, key="t", timeout_s=5.0)
        results = run_trials(spec, n=2)
        for failure in results:
            assert isinstance(failure, TrialFailure)
            assert failure.kind == "raised"
            assert "bad trial" in failure.message

    def test_canonical_order_holds_with_failures(self):
        spec = TrialSpec(fn=_mixed, key="t", timeout_s=0.2)
        results = run_trials(spec, params=[{"index": i} for i in range(4)])
        assert results[0] == 0 and results[3] == 3
        assert results[1].kind == "raised"
        assert results[2].kind == "timeout"

    def test_failures_are_falsy(self):
        spec = TrialSpec(fn=_mixed, key="t", timeout_s=0.2)
        results = run_trials(spec, params=[{"index": i} for i in range(4)])
        assert [r for r in results if r is not None and not isinstance(
            r, TrialFailure)] == [0, 3]
        assert not TrialFailure(0, "timeout", "", 0.0)

    def test_without_timeout_exceptions_propagate(self):
        with pytest.raises(ValueError, match="bad trial"):
            run_trials(TrialSpec(fn=_angry, key="t"), n=1)

    def test_pooled_failures_match_serial(self):
        spec = TrialSpec(fn=_mixed, key="t", timeout_s=0.3)
        params = [{"index": i} for i in range(4)]
        serial = run_trials(spec, params=params, jobs=1)
        pooled = run_trials(spec, params=params, jobs=2, chunk_size=1)
        assert [type(r) for r in serial] == [type(r) for r in pooled]
        assert [
            r.kind if isinstance(r, TrialFailure) else r for r in serial
        ] == [
            r.kind if isinstance(r, TrialFailure) else r for r in pooled
        ]

    def test_failure_metric_counted(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        spec = TrialSpec(fn=_angry, key="angry", timeout_s=5.0)
        TrialRunner(metrics=metrics).run_trials(spec, n=3)
        snapshot = metrics.to_dict()["metrics"]
        series = snapshot["cchunter_trial_failures_total"]["series"]
        assert series[0]["labels"] == {"spec": "angry", "kind": "raised"}
        assert series[0]["value"] == 3

    def test_progress_still_reaches_total(self):
        seen = []
        spec = TrialSpec(fn=_mixed, key="t", timeout_s=0.2)
        TrialRunner(progress=lambda done, total: seen.append((done, total))) \
            .run_trials(spec, params=[{"index": i} for i in range(4)])
        assert seen[-1][0] == seen[-1][1] == 4
