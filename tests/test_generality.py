"""Generality tests: detection works beyond the paper's exact machine.

CC-Hunter's algorithms key on conflict patterns, not on one cache
geometry or clock rate; these tests run the pipeline on differently
shaped machines (other associativity, core counts, frequency, quantum)
to ensure nothing is silently hard-wired to the defaults.
"""

import pytest

from repro.channels.base import ChannelConfig
from repro.channels.cache import CacheCovertChannel
from repro.channels.divider import DividerCovertChannel
from repro.channels.membus import MemoryBusCovertChannel
from repro.config import CacheConfig, MachineConfig
from repro.core.detector import AuditUnit, CCHunter
from repro.sim.machine import Machine
from repro.util.bitstream import Message


class TestOtherCacheGeometries:
    @pytest.mark.parametrize("assoc", [2, 4, 16])
    def test_cache_channel_any_associativity(self, assoc):
        """The set ping-pong works for any associativity >= 2 (the trojan
        holds `assoc` lines, the spy one)."""
        config = MachineConfig(
            l2=CacheConfig(size_bytes=64 * 1024, associativity=assoc)
        )
        machine = Machine(config=config, seed=4)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.CACHE)
        channel = CacheCovertChannel(
            machine,
            ChannelConfig(message=Message.random(8, 4), bandwidth_bps=500.0),
            n_sets_total=32,
        )
        channel.deploy()
        machine.run_quanta(1)
        assert channel.decoded_bits[1:] == list(channel.message.bits[1:])
        verdict = hunter.report().verdicts[0]
        assert verdict.detected
        assert verdict.dominant_period == pytest.approx(32, rel=0.3)

    def test_small_cache_small_channel(self):
        config = MachineConfig(
            l2=CacheConfig(size_bytes=16 * 1024, associativity=4)
        )
        machine = Machine(config=config, seed=4)
        assert machine.config.l2.n_sets == 64
        channel = CacheCovertChannel(
            machine,
            ChannelConfig(message=Message.random(6, 1), bandwidth_bps=500.0),
            n_sets_total=16,
        )
        channel.deploy()
        machine.run_until(channel.transmission_end + 1)
        assert channel.bit_error_rate() <= 1 / 6


class TestOtherTopologies:
    def test_six_core_machine(self):
        config = MachineConfig(n_cores=6, threads_per_core=2)
        machine = Machine(config=config, seed=5)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.DIVIDER, core=5)
        channel = DividerCovertChannel(
            machine,
            ChannelConfig(message=Message.random(20, 5),
                          bandwidth_bps=100.0),
        )
        channel.deploy(core=5)
        machine.run_quanta(channel.quanta_needed())
        assert hunter.report().verdicts[0].detected

    def test_single_thread_per_core_has_no_smt_channel(self):
        config = MachineConfig(n_cores=4, threads_per_core=1)
        machine = Machine(config=config, seed=5)
        channel = DividerCovertChannel(
            machine, ChannelConfig(message=Message.random(4, 5))
        )
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            channel.deploy(core=0)  # only one context on the core


class TestOtherClocks:
    def test_three_ghz_machine(self):
        """Δt constants are in cycles, bandwidths in bits/s — both stay
        meaningful at a different frequency."""
        config = MachineConfig(frequency_hz=3.0e9)
        machine = Machine(config=config, seed=6)
        assert machine.quantum_cycles == 300_000_000
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        channel = MemoryBusCovertChannel(
            machine,
            ChannelConfig(message=Message.random(30, 6),
                          bandwidth_bps=100.0),
        )
        channel.deploy(trojan_ctx=0, spy_ctx=2)
        machine.run_quanta(channel.quanta_needed())
        assert hunter.report().verdicts[0].detected
        assert channel.bit_error_rate() == 0.0

    def test_short_quantum_machine(self):
        config = MachineConfig(os_quantum_seconds=0.01)
        machine = Machine(config=config, seed=7)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        channel = MemoryBusCovertChannel(
            machine,
            ChannelConfig(message=Message.random(30, 7),
                          bandwidth_bps=1000.0),
        )
        channel.deploy(trojan_ctx=0, spy_ctx=2)
        # 30 bits at 1000 bps span three of the short quanta (recurrence
        # needs multiple observation windows).
        machine.run_quanta(channel.quanta_needed())
        assert hunter.report().verdicts[0].detected
