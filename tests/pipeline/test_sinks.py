"""Focused tests for verdict sinks: ordering, close delivery, metrics."""

import numpy as np

from repro.core.report import DetectionReport
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import (
    BurstAnalyzer,
    CallbackSink,
    CollectingSink,
    DetectionSession,
    MetricsSink,
    QuantumObservation,
)


def _obs(quantum, width=1000):
    return QuantumObservation(
        quantum=quantum,
        t0=quantum * width,
        t1=(quantum + 1) * width,
        counts={"membus": np.zeros(4, dtype=np.int64)},
        conflicts=None,
    )


def _session(*sinks):
    session = DetectionSession(sinks=list(sinks))
    session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
    return session


class _OrderProbe:
    """Sink that appends (tag, event, quantum) to a shared journal."""

    def __init__(self, tag, journal):
        self.tag = tag
        self.journal = journal

    def on_quantum(self, quantum, report):
        self.journal.append((self.tag, "quantum", quantum))

    def on_close(self, report):
        self.journal.append((self.tag, "close", None))


class TestSinkDispatch:
    def test_sinks_called_in_registration_order(self):
        journal = []
        session = _session(
            _OrderProbe("a", journal), _OrderProbe("b", journal)
        )
        session.push_quantum(_obs(0))
        session.push_quantum(_obs(1))
        session.close()
        assert journal == [
            ("a", "quantum", 0),
            ("b", "quantum", 0),
            ("a", "quantum", 1),
            ("b", "quantum", 1),
            ("a", "close", None),
            ("b", "close", None),
        ]

    def test_close_delivers_final_report_to_every_sink(self):
        collect_a, collect_b = CollectingSink(), CollectingSink()
        session = _session(collect_a, collect_b)
        session.push_quantum(_obs(0))
        final = session.close()
        assert isinstance(final, DetectionReport)
        assert collect_a.final is final
        assert collect_b.final is final

    def test_callback_sink_tolerates_missing_callbacks(self):
        session = _session(CallbackSink())  # neither callback given
        session.push_quantum(_obs(0))
        session.close()

    def test_callback_sink_invokes_callbacks(self):
        seen = []
        sink = CallbackSink(
            on_quantum=lambda q, r: seen.append(("q", q)),
            on_close=lambda r: seen.append(("close", None)),
        )
        session = _session(sink)
        session.push_quantum(_obs(0))
        session.close()
        assert seen == [("q", 0), ("close", None)]


class TestMetricsSink:
    def test_counts_reports_and_closes(self):
        reg = MetricsRegistry()
        session = _session(MetricsSink(metrics=reg))
        session.push_quantum(_obs(0))
        session.push_quantum(_obs(1))
        session.close()
        assert reg.counter("cchunter_sink_reports_total").value == 2
        assert reg.counter("cchunter_sink_closes_total").value == 1

    def test_records_first_detection(self):
        class _Verdict:
            unit = "membus"
            detected = True

        class _Report:
            verdicts = (_Verdict(),)

        reg = MetricsRegistry()
        sink = MetricsSink(metrics=reg)
        sink.on_quantum(3, _Report())
        sink.on_quantum(4, _Report())
        assert sink.first_detection("membus") == 3
        assert sink.first_detection("cache") is None
        gauge = reg.gauge(
            "cchunter_sink_first_detection_quantum", labels={"unit": "membus"}
        )
        assert gauge.value == 3
        detected = reg.counter(
            "cchunter_sink_detected_verdicts_total", labels={"unit": "membus"}
        )
        assert detected.value == 2

    def test_clear_verdicts_record_nothing_per_unit(self):
        reg = MetricsRegistry()
        session = _session(MetricsSink(metrics=reg))
        session.push_quantum(_obs(0))  # all-zero counts: verdict stays clear
        detected = reg.counter(
            "cchunter_sink_detected_verdicts_total", labels={"unit": "membus"}
        )
        assert detected.value == 0
        assert "cchunter_sink_first_detection_quantum" not in (
            reg.to_dict()["metrics"]
        )
