"""Exact-parity proof: columnar hot path vs legacy full-history reads.

The columnar event path (``CCHunter(columnar=True)``, the default) must
be *bit-identical* to the legacy path — same verdicts, same evidence
bundles, same count-type metrics, same exported traces — on every
channel family, live and via trace replay, with and without fault
injectors. Each test runs the same seeded session both ways and diffs
the observable outputs (docs/PERFORMANCE.md, "Columnar hot path").
"""

import numpy as np
import pytest

from repro.analysis.figures import run_channel_session
from repro.faults.injectors import BitFlipInjector, DropInjector
from repro.obs.metrics import MetricsRegistry
from repro.traces import analyze_traces, export_traces, load_traces
from repro.util.bitstream import Message

pytestmark = pytest.mark.parity

#: Monotone count-type metric families that must match exactly between
#: the two read strategies (timing histograms legitimately differ).
COUNT_METRICS = (
    "cchunter_source_observations_total",
    "cchunter_source_channel_events_total",
    "cchunter_source_conflict_records_total",
    "cchunter_session_quanta_total",
    "cchunter_analyzer_windows_total",
    "cchunter_analyzer_events_total",
    "cchunter_analyzer_clamp_events_total",
    "cchunter_analyzer_entry_saturation_total",
    "cchunter_analyzer_train_events_total",
    "cchunter_analyzer_gaps_total",
    "cchunter_analyzer_flagged_faults_total",
)

KINDS = ("membus", "divider", "cache")


def _run(kind, columnar, injectors=(), capture_evidence=True):
    metrics = MetricsRegistry()
    run = run_channel_session(
        kind,
        Message.random(12, 7),
        bandwidth_bps=100.0,
        seed=11,
        max_quanta=16,
        track_detection_latency=True,
        injectors=injectors,
        capture_evidence=capture_evidence,
        metrics=metrics,
        columnar=columnar,
    )
    return run, metrics


def _count_metrics(metrics):
    dump = metrics.to_dict()["metrics"]
    return {
        name: dump[name]["series"]
        for name in COUNT_METRICS
        if name in dump
    }


def _evidence_dicts(hunter):
    return {
        unit: bundle.to_dict()
        for unit, bundle in hunter.session.evidence().items()
    }


class TestLiveParity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_verdicts_evidence_and_metrics_identical(self, kind):
        run_col, m_col = _run(kind, columnar=True)
        run_leg, m_leg = _run(kind, columnar=False)
        assert (
            run_col.hunter.report().to_dict()
            == run_leg.hunter.report().to_dict()
        )
        assert _evidence_dicts(run_col.hunter) == _evidence_dicts(
            run_leg.hunter
        )
        assert _count_metrics(m_col) == _count_metrics(m_leg)

    @pytest.mark.parametrize("kind", KINDS)
    def test_per_quantum_histories_identical(self, kind):
        run_col, _ = _run(kind, columnar=True)
        run_leg, _ = _run(kind, columnar=False)
        col = run_col.hunter.session.analyzers
        leg = run_leg.hunter.session.analyzers
        assert len(col) == len(leg)
        for a, b in zip(col, leg):
            assert a.unit == b.unit
            hists_a = getattr(a, "histograms", None)
            if hists_a is not None:
                for ha, hb in zip(hists_a, b.histograms):
                    np.testing.assert_array_equal(ha, hb)
            analyses_a = getattr(a, "analyses", None)
            if analyses_a is not None:
                assert len(analyses_a) == len(b.analyses)

    @pytest.mark.parametrize("kind", KINDS)
    def test_first_detection_identical(self, kind):
        run_col, _ = _run(kind, columnar=True)
        run_leg, _ = _run(kind, columnar=False)
        s_col, s_leg = run_col.hunter.session, run_leg.hunter.session
        for unit in s_col.units:
            assert s_col.first_detection_quantum(
                unit
            ) == s_leg.first_detection_quantum(unit)


class TestInjectorParity:
    """Fault injectors perturb both paths identically (same seeds)."""

    @pytest.mark.parametrize("kind", ("membus", "divider"))
    def test_verdicts_identical_under_injection(self, kind):
        def injectors():
            return (
                DropInjector(p=0.2, seed=5),
                BitFlipInjector(p=0.05, seed=9),
            )

        run_col, m_col = _run(kind, columnar=True, injectors=injectors())
        run_leg, m_leg = _run(kind, columnar=False, injectors=injectors())
        assert (
            run_col.hunter.report().to_dict()
            == run_leg.hunter.report().to_dict()
        )
        assert _evidence_dicts(run_col.hunter) == _evidence_dicts(
            run_leg.hunter
        )
        assert _count_metrics(m_col) == _count_metrics(m_leg)


class TestReplayParity:
    """Both read strategies leave identical taps → identical archives →
    identical offline verdicts."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_exported_archives_identical(self, kind, tmp_path):
        run_col, _ = _run(kind, columnar=True, capture_evidence=False)
        run_leg, _ = _run(kind, columnar=False, capture_evidence=False)
        p_col = tmp_path / "col.npz"
        p_leg = tmp_path / "leg.npz"
        export_traces(run_col.machine, p_col)
        export_traces(run_leg.machine, p_leg)
        a, b = load_traces(p_col), load_traces(p_leg)
        np.testing.assert_array_equal(a.bus_lock_times, b.bus_lock_times)
        np.testing.assert_array_equal(a.cache_times, b.cache_times)
        for core in a.divider_wait_counts:
            np.testing.assert_array_equal(
                a.divider_wait_counts[core], b.divider_wait_counts[core]
            )

    def test_replay_verdicts_identical(self, tmp_path):
        run_col, _ = _run("membus", columnar=True, capture_evidence=False)
        run_leg, _ = _run("membus", columnar=False, capture_evidence=False)
        p_col = tmp_path / "col.npz"
        p_leg = tmp_path / "leg.npz"
        export_traces(run_col.machine, p_col)
        export_traces(run_leg.machine, p_leg)
        rep_col = analyze_traces(load_traces(p_col))
        rep_leg = analyze_traces(load_traces(p_leg))
        assert rep_col.to_dict() == rep_leg.to_dict()
        # Replay agrees with the live verdict for the audited unit too.
        live = run_col.hunter.report().verdict_for("membus")
        assert rep_col.verdict_for("membus").detected == live.detected
