"""Versioned JSON codecs: exact round-trips, strict rejection.

The wire protocol (docs/SERVING.md) rides on these codecs, so the
round-trip must be *exact* — dtypes included — and the decoders must be
strict: unknown fields, missing fields, wrong types, and foreign format
stamps are all loud :class:`CodecError`\\ s, never silent coercion.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.report import UnitVerdict
from repro.pipeline import (
    ChannelKind,
    ChannelSpec,
    CodecError,
    ConflictRecords,
    QuantumObservation,
    channel_spec_from_dict,
    channel_spec_to_dict,
    observation_from_dict,
    observation_to_dict,
    verdict_from_dict,
    verdict_to_dict,
)


def _obs(conflicts=True, faults=()):
    records = None
    if conflicts:
        records = ConflictRecords(
            times=np.array([5, 9, 12], dtype=np.int64),
            replacers=np.array([0, 2, 0], dtype=np.int64),
            victims=np.array([2, 0, 2], dtype=np.int64),
        )
    return QuantumObservation(
        quantum=7,
        t0=7000,
        t1=8000,
        counts={
            "membus": np.array([0, 4, 17, 0], dtype=np.int64),
            "divider": np.array([1, 1], dtype=np.int64),
        },
        conflicts=records,
        faults=tuple(faults),
    )


class TestObservationRoundTrip:
    def test_exact_round_trip(self):
        obs = _obs(faults=("drop:membus", "shed:*"))
        back = QuantumObservation.from_json(obs.to_json())
        assert back.quantum == obs.quantum
        assert back.t0 == obs.t0 and back.t1 == obs.t1
        assert back.faults == obs.faults
        assert sorted(back.counts) == sorted(obs.counts)
        for name in obs.counts:
            assert back.counts[name].dtype == np.int64
            np.testing.assert_array_equal(back.counts[name], obs.counts[name])
        for field in ("times", "replacers", "victims"):
            col = getattr(back.conflicts, field)
            assert col.dtype == np.int64
            np.testing.assert_array_equal(col, getattr(obs.conflicts, field))

    def test_no_conflicts_round_trip(self):
        obs = _obs(conflicts=False)
        back = QuantumObservation.from_json(obs.to_json())
        assert back.conflicts is None

    def test_json_is_plain_scalars(self):
        payload = json.loads(_obs().to_json())
        assert payload["format"] == "repro.pipeline.observation/v1"
        assert all(isinstance(v, int) for v in payload["counts"]["membus"])

    @settings(max_examples=30, deadline=None)
    @given(
        quantum=st.integers(0, 2**40),
        counts=st.lists(st.integers(0, 2**31), max_size=16),
        faults=st.lists(
            st.sampled_from(["drop:*", "stall:membus", "shed:*"]), max_size=3
        ),
    )
    def test_property_round_trip(self, quantum, counts, faults):
        obs = QuantumObservation(
            quantum=quantum,
            t0=quantum * 1000,
            t1=(quantum + 1) * 1000,
            counts={"membus": np.array(counts, dtype=np.int64)},
            faults=tuple(faults),
        )
        back = observation_from_dict(json.loads(obs.to_json()))
        np.testing.assert_array_equal(back.counts["membus"], counts)
        assert back.faults == tuple(faults)


class TestObservationStrictness:
    def test_unknown_field_rejected(self):
        payload = observation_to_dict(_obs())
        payload["extra"] = 1
        with pytest.raises(CodecError, match="unknown field"):
            observation_from_dict(payload)

    def test_missing_required_field_rejected(self):
        payload = observation_to_dict(_obs())
        del payload["quantum"]
        with pytest.raises(CodecError, match="missing required"):
            observation_from_dict(payload)

    def test_wrong_format_rejected(self):
        payload = observation_to_dict(_obs())
        payload["format"] = "repro.pipeline.observation/v2"
        with pytest.raises(CodecError, match="format"):
            observation_from_dict(payload)

    def test_bool_masquerading_as_int_rejected(self):
        payload = observation_to_dict(_obs())
        payload["quantum"] = True
        with pytest.raises(CodecError, match="integer"):
            observation_from_dict(payload)

    def test_float_counts_rejected(self):
        payload = observation_to_dict(_obs())
        payload["counts"]["membus"] = [0.5, 1]
        with pytest.raises(CodecError, match="non-integer"):
            observation_from_dict(payload)

    def test_ragged_conflicts_rejected(self):
        payload = observation_to_dict(_obs())
        payload["conflicts"]["times"] = payload["conflicts"]["times"][:-1]
        with pytest.raises(CodecError, match="ragged"):
            observation_from_dict(payload)

    def test_unknown_conflict_field_rejected(self):
        payload = observation_to_dict(_obs())
        payload["conflicts"]["colour"] = []
        with pytest.raises(CodecError, match="unknown field"):
            observation_from_dict(payload)

    def test_garbage_json_rejected(self):
        with pytest.raises(CodecError, match="not valid JSON"):
            QuantumObservation.from_json("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(CodecError, match="JSON object"):
            observation_from_dict([1, 2, 3])


class TestVerdictRoundTrip:
    def _verdicts(self):
        return [
            UnitVerdict(
                unit="membus",
                method="burst",
                detected=True,
                quanta_analyzed=40,
                max_likelihood_ratio=0.93,
                recurrent=True,
                burst_window_fraction=0.5,
                notes=("7 flagged input fault(s) (shed x7)",),
                health="degraded",
            ),
            UnitVerdict(
                unit="cache",
                method="oscillation",
                detected=False,
                quanta_analyzed=12,
                oscillating_windows=0,
                max_peak=0.12,
                dominant_period=None,
            ),
        ]

    def test_exact_round_trip(self):
        for verdict in self._verdicts():
            back = UnitVerdict.from_json(verdict.to_json())
            assert back == verdict

    def test_evidence_passes_through(self):
        verdict = UnitVerdict(
            unit="membus",
            method="burst",
            detected=False,
            quanta_analyzed=1,
            evidence={"format": "repro.obs.evidence/v1", "unit": "membus"},
        )
        back = verdict_from_dict(verdict_to_dict(verdict))
        assert back.evidence == verdict.evidence

    def test_to_dict_unchanged_shape(self):
        # The codec adds only the format stamp on top of to_dict().
        verdict = self._verdicts()[0]
        payload = verdict_to_dict(verdict)
        assert payload.pop("format") == "repro.pipeline.verdict/v1"
        assert payload == verdict.to_dict()


class TestVerdictStrictness:
    def _payload(self):
        return verdict_to_dict(
            UnitVerdict(
                unit="membus", method="burst", detected=False,
                quanta_analyzed=3,
            )
        )

    def test_unknown_field_rejected(self):
        payload = self._payload()
        payload["confidence"] = 0.9
        with pytest.raises(CodecError, match="unknown field"):
            verdict_from_dict(payload)

    def test_missing_required_rejected(self):
        payload = self._payload()
        del payload["detected"]
        with pytest.raises(CodecError, match="missing required"):
            verdict_from_dict(payload)

    def test_bad_health_rejected(self):
        payload = self._payload()
        payload["health"] = "on-fire"
        with pytest.raises(CodecError, match="health"):
            verdict_from_dict(payload)

    def test_non_bool_detected_rejected(self):
        payload = self._payload()
        payload["detected"] = 1
        with pytest.raises(CodecError, match="bool"):
            verdict_from_dict(payload)

    def test_non_string_notes_rejected(self):
        payload = self._payload()
        payload["notes"] = [3]
        with pytest.raises(CodecError, match="notes"):
            verdict_from_dict(payload)


class TestChannelSpecCodec:
    def test_round_trip(self):
        for spec in (
            ChannelSpec(name="membus", kind=ChannelKind.BURST, dt=1000),
            ChannelSpec(name="cache", kind=ChannelKind.CONFLICT),
        ):
            assert channel_spec_from_dict(channel_spec_to_dict(spec)) == spec

    def test_burst_requires_dt(self):
        payload = channel_spec_to_dict(
            ChannelSpec(name="membus", kind=ChannelKind.BURST, dt=1000)
        )
        payload["dt"] = None
        with pytest.raises(CodecError, match="require"):
            channel_spec_from_dict(payload)

    def test_bad_kind_rejected(self):
        payload = channel_spec_to_dict(
            ChannelSpec(name="cache", kind=ChannelKind.CONFLICT)
        )
        payload["kind"] = "sparkle"
        with pytest.raises(CodecError, match="kind"):
            channel_spec_from_dict(payload)

    def test_nonpositive_dt_rejected(self):
        payload = channel_spec_to_dict(
            ChannelSpec(name="membus", kind=ChannelKind.BURST, dt=1000)
        )
        payload["dt"] = 0
        with pytest.raises(CodecError, match="positive"):
            channel_spec_from_dict(payload)
