"""Tests for the streaming detection pipeline (sources → session → sinks)."""

import io
import json

import numpy as np
import pytest

from repro.config import CLUSTERING_WINDOW_QUANTA
from repro.core.detector import AuditUnit, CCHunter
from repro.errors import DetectionError
from repro.pipeline import (
    BurstAnalyzer,
    ChannelKind,
    CollectingSink,
    DetectionSession,
    MachineEventSource,
    QuantumObservation,
    StreamPrinterSink,
    build_session,
)
from repro.sim.process import BusLockBurst, Process
from repro.traces import ArchiveEventSource, export_traces


def _obs(quantum, counts, t0=None, t1=None, width=1000):
    t0 = quantum * width if t0 is None else t0
    t1 = t0 + width if t1 is None else t1
    return QuantumObservation(
        quantum=quantum, t0=t0, t1=t1, counts=counts, conflicts=None
    )


class TestSession:
    def test_duplicate_unit_rejected(self):
        session = DetectionSession()
        session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
        with pytest.raises(DetectionError):
            session.add_analyzer(BurstAnalyzer(unit="membus", dt=200))

    def test_unknown_unit_rejected(self):
        with pytest.raises(DetectionError):
            DetectionSession().analyzer_for("membus")

    def test_missing_channel_counts_degrades_not_raises(self):
        """A lost readout is a gap + DEGRADED health, not an exception."""
        session = DetectionSession()
        analyzer = session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
        session.push_quantum(_obs(0, counts={}))
        session.push_quantum(_obs(1, {"membus": np.zeros(4, dtype=np.int64)}))
        assert analyzer.gaps == 1
        verdict = session.current_verdicts().verdict_for("membus")
        assert verdict.health == "degraded"
        assert verdict.quanta_analyzed == 2
        assert any("gap" in note for note in verdict.notes)

    def test_verdicts_available_every_quantum(self):
        session = DetectionSession()
        session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
        for quantum in range(3):
            session.push_quantum(
                _obs(quantum, {"membus": np.zeros(10, dtype=np.int64)})
            )
            report = session.current_verdicts()
            assert report.verdict_for("membus").quanta_analyzed == quantum + 1

    def test_burst_history_is_bounded(self):
        analyzer = BurstAnalyzer(unit="membus", dt=100)
        session = DetectionSession()
        session.add_analyzer(analyzer)
        for quantum in range(CLUSTERING_WINDOW_QUANTA + 40):
            session.push_quantum(
                _obs(quantum, {"membus": np.zeros(4, dtype=np.int64)})
            )
        assert len(analyzer.histograms) == CLUSTERING_WINDOW_QUANTA
        assert analyzer.quanta_seen == CLUSTERING_WINDOW_QUANTA + 40
        verdict = session.current_verdicts().verdict_for("membus")
        assert verdict.quanta_analyzed == CLUSTERING_WINDOW_QUANTA + 40


class TestSinks:
    def test_collecting_sink_sees_every_quantum(self, small_machine):
        sink = CollectingSink()
        hunter = CCHunter(small_machine, sinks=[sink])
        hunter.audit(AuditUnit.MEMORY_BUS, dt=1000)

        def trojan(proc):
            yield BusLockBurst(count=100, period=100)

        small_machine.spawn(Process("t", body=trojan), ctx=0)
        small_machine.run_quanta(3)
        assert [q for q, _r in sink.reports] == [0, 1, 2]
        final = hunter.session.close()
        assert sink.final is final

    def test_stream_printer_text_lines(self):
        buffer = io.StringIO()
        session = DetectionSession(sinks=[StreamPrinterSink(stream=buffer)])
        session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
        for quantum in range(2):
            session.push_quantum(
                _obs(quantum, {"membus": np.zeros(4, dtype=np.int64)})
            )
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        assert "membus" in lines[0]

    def test_stream_printer_jsonl(self):
        buffer = io.StringIO()
        session = DetectionSession(
            sinks=[StreamPrinterSink(stream=buffer, jsonl=True)]
        )
        session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
        session.push_quantum(_obs(0, {"membus": np.zeros(4, dtype=np.int64)}))
        payload = json.loads(buffer.getvalue())
        assert payload["quantum"] == 0
        assert payload["report"]["verdicts"][0]["unit"] == "membus"


class TestMachineEventSource:
    def test_duplicate_channel_rejected(self, small_machine):
        source = MachineEventSource(small_machine)
        source.add_burst_channel("membus", small_machine.bus_lock_tap, 1000)
        with pytest.raises(DetectionError):
            source.add_burst_channel("membus", small_machine.bus_lock_tap, 500)

    def test_many_sessions_off_one_source(self, small_machine):
        """Concurrent audit sessions share one source's observations."""
        source = MachineEventSource(small_machine)
        source.add_burst_channel("membus", small_machine.bus_lock_tap, 1000)
        sessions = [build_session(source) for _ in range(3)]
        for session in sessions:
            source.subscribe(session)

        def trojan(proc):
            yield BusLockBurst(count=200, period=100)

        small_machine.spawn(Process("t", body=trojan), ctx=0)
        small_machine.run_quanta(2)
        verdicts = [
            s.current_verdicts().verdict_for("membus") for s in sessions
        ]
        assert all(v == verdicts[0] for v in verdicts)
        assert verdicts[0].quanta_analyzed == 2


class TestArchiveEventSource:
    def test_channels_cover_recorded_units(self, small_machine, tmp_path):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.MEMORY_BUS)

        def trojan(proc):
            yield BusLockBurst(count=50, period=200)

        small_machine.spawn(Process("t", body=trojan), ctx=0)
        small_machine.run_quanta(2)
        archive = export_traces(small_machine, tmp_path / "s.npz")
        source = ArchiveEventSource(archive)
        kinds = {spec.name: spec.kind for spec in source.channels()}
        assert kinds["membus"] is ChannelKind.BURST
        assert kinds["cache"] is ChannelKind.CONFLICT

    def test_observations_cover_every_quantum(self, small_machine, tmp_path):
        hunter = CCHunter(small_machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        small_machine.run_quanta(3)
        archive = export_traces(small_machine, tmp_path / "s.npz")
        observations = list(ArchiveEventSource(archive))
        assert [obs.quantum for obs in observations] == [0, 1, 2]
        assert observations[0].t1 == small_machine.quantum_cycles


class TestDetectionLatencyTracking:
    def test_eager_first_detection_matches_lazy(self):
        from repro.analysis.figures import run_channel_session
        from repro.util.bitstream import Message

        message = Message.from_bits([1, 0] * 15)
        lazy = run_channel_session(
            "membus", message, bandwidth_bps=100.0, seed=91, noise=False
        )
        eager = run_channel_session(
            "membus", message, bandwidth_bps=100.0, seed=91, noise=False,
            track_detection_latency=True,
        )
        lazy_q = lazy.hunter.first_detection_quantum(AuditUnit.MEMORY_BUS)
        eager_q = eager.hunter.first_detection_quantum(AuditUnit.MEMORY_BUS)
        assert lazy_q is not None
        assert eager_q == lazy_q

    def test_eager_session_without_detection_returns_none(self):
        """Regression: an eager session that never detected must answer
        None directly — its tracking map is authoritative — instead of
        falling through to the analyzer's retrospective reconstruction."""
        session = DetectionSession(track_detection_latency=True)
        analyzer = BurstAnalyzer(unit="membus", dt=100)
        session.add_analyzer(analyzer)
        for quantum in range(3):
            session.push_quantum(
                _obs(quantum, {"membus": np.zeros(8, dtype=np.int64)})
            )
        # Poison the fallback: reaching it means the eager map was ignored.
        analyzer.first_detection_quantum = lambda: pytest.fail(
            "eager session fell through to analyzer reconstruction"
        )
        assert session.first_detection_quantum("membus") is None

    def test_sink_attached_mid_run_falls_back_to_analyzer(self):
        """Quanta pushed while lazy aren't in the tracking map, so the
        session must reconstruct from the analyzer's retained state."""
        session = DetectionSession()
        analyzer = BurstAnalyzer(unit="membus", dt=100)
        session.add_analyzer(analyzer)
        session.push_quantum(_obs(0, {"membus": np.zeros(8, dtype=np.int64)}))
        session.sinks.append(CollectingSink())  # eager from quantum 1 on
        session.push_quantum(_obs(1, {"membus": np.zeros(8, dtype=np.int64)}))
        analyzer.first_detection_quantum = lambda: 0  # sentinel
        assert session.first_detection_quantum("membus") == 0


class TestOscillationAnalyzerIncremental:
    def test_matches_batch_detector_path(self, small_machine):
        """The incremental cache analyzer must agree with a replayed batch
        computation of the same windows."""
        from repro.core.autocorr import autocorrelogram
        from repro.core.event_train import dominant_pair_series
        from repro.core.oscillation import analyze_autocorrelogram

        hunter = CCHunter(small_machine, min_train_events=64, max_lag=400)
        hunter.audit(AuditUnit.CACHE)
        from tests.core.test_detector import TestCacheFlow

        TestCacheFlow()._pingpong(small_machine)
        small_machine.run_quanta(1)
        incremental = hunter.cache_analyses()
        assert incremental

        times, reps, vics = small_machine.cache_miss_tap.records_in(
            0, small_machine.quantum_cycles
        )
        labels, _idx, _pair = dominant_pair_series(reps, vics)
        batch = analyze_autocorrelogram(
            autocorrelogram(labels, 400), min_peak_height=0.45
        )
        assert incremental[0].significant == batch.significant
        assert incremental[0].max_peak == pytest.approx(
            batch.max_peak, abs=1e-9
        )
