"""Hardened-pipeline tests: quarantine, sink isolation, never-raise.

These pin the graceful-degradation contract of docs/ROBUSTNESS.md: an
analyzer or sink failure is a health transition plus bookkeeping, never
a session-killing exception; and no analyzer ever raises on a
well-typed observation stream, however degenerate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.pipeline import (
    BurstAnalyzer,
    CollectingSink,
    DetectionSession,
    Health,
    OscillationAnalyzer,
    QuantumObservation,
    worst,
)
from repro.pipeline.source import ConflictRecords

pytestmark = pytest.mark.resilience


def _obs(quantum, counts, conflicts=None, width=1000):
    return QuantumObservation(
        quantum=quantum,
        t0=quantum * width,
        t1=(quantum + 1) * width,
        counts=counts,
        conflicts=conflicts,
    )


class _ExplodingAnalyzer(BurstAnalyzer):
    """Raises on push after ``detonate_at`` quanta; verdict optional too."""

    def __init__(self, detonate_at=0, verdict_raises=False, **kwargs):
        kwargs.setdefault("unit", "membus")
        kwargs.setdefault("dt", 100)
        super().__init__(**kwargs)
        self.detonate_at = detonate_at
        self.verdict_raises = verdict_raises
        self.pushes = 0

    def push(self, obs):
        self.pushes += 1
        if self.pushes > self.detonate_at:
            raise RuntimeError("boom")
        super().push(obs)

    def verdict(self, min_oscillating_windows=None):
        if self.verdict_raises:
            raise RuntimeError("verdict boom")
        return super().verdict(min_oscillating_windows)


class _FlakySink:
    """Fails the first ``fail_first`` attempts of every dispatch."""

    def __init__(self, fail_first=0, fail_close=False):
        self.fail_first = fail_first
        self.fail_close = fail_close
        self.attempts = 0
        self.quanta = []
        self.closed = 0

    def on_quantum(self, quantum, report):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            raise IOError("sink down")
        self.quanta.append(quantum)

    def on_close(self, report):
        if self.fail_close:
            raise IOError("close down")
        self.closed += 1


class TestHealthStateMachine:
    def test_worst_ordering(self):
        assert worst(()) is Health.OK
        assert worst((Health.OK, Health.DEGRADED)) is Health.DEGRADED
        assert worst((Health.DEGRADED, Health.FAILED)) is Health.FAILED

    def test_analyzer_error_degrades_then_fails(self):
        session = DetectionSession(fail_after=3)
        analyzer = session.add_analyzer(_ExplodingAnalyzer(detonate_at=1))
        counts = {"membus": np.zeros(4, dtype=np.int64)}
        session.push_quantum(_obs(0, counts))
        assert session.unit_health("membus") is Health.OK
        session.push_quantum(_obs(1, counts))
        assert session.unit_health("membus") is Health.DEGRADED
        session.push_quantum(_obs(2, counts))
        session.push_quantum(_obs(3, counts))
        assert session.unit_health("membus") is Health.FAILED
        # Quarantined: the analyzer stops being fed, the session lives.
        session.push_quantum(_obs(4, counts))
        assert analyzer.pushes == 4
        verdict = session.current_verdicts().verdict_for("membus")
        assert verdict.health == "failed"
        assert any("quarantined" in note for note in verdict.notes)

    def test_success_resets_consecutive_count(self):
        class Sometimes(_ExplodingAnalyzer):
            def push(self, obs):
                self.pushes += 1
                if self.pushes % 2 == 0:
                    raise RuntimeError("intermittent")
                BurstAnalyzer.push(self, obs)

        session = DetectionSession(fail_after=3)
        session.add_analyzer(Sometimes())
        counts = {"membus": np.zeros(4, dtype=np.int64)}
        for quantum in range(10):
            session.push_quantum(_obs(quantum, counts))
        # Never three consecutive failures, so never FAILED.
        assert session.unit_health("membus") is Health.DEGRADED

    def test_verdict_error_yields_synthetic_verdict(self):
        session = DetectionSession()
        session.add_analyzer(_ExplodingAnalyzer(
            detonate_at=10_000, verdict_raises=True
        ))
        session.push_quantum(_obs(0, {"membus": np.zeros(4, dtype=np.int64)}))
        report = session.current_verdicts()
        verdict = report.verdict_for("membus")
        assert not verdict.detected
        assert any("verdict unavailable" in note for note in verdict.notes)
        assert verdict.health in ("degraded", "failed")

    def test_errors_counted_in_metrics(self):
        metrics = MetricsRegistry()
        session = DetectionSession(metrics=metrics)
        session.add_analyzer(_ExplodingAnalyzer(detonate_at=0))
        session.push_quantum(_obs(0, {"membus": np.zeros(4, dtype=np.int64)}))
        snapshot = metrics.to_dict()["metrics"]
        series = snapshot["cchunter_analyzer_errors_total"]["series"]
        assert series[0]["labels"] == {"unit": "membus"}
        assert series[0]["value"] == 1


class TestSinkIsolation:
    def _session(self, *sinks, **kwargs):
        kwargs.setdefault("sleep", lambda _s: None)
        session = DetectionSession(sinks=list(sinks), **kwargs)
        session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
        return session

    def test_failing_sink_does_not_starve_others(self):
        bad = _FlakySink(fail_first=10_000)
        good = CollectingSink()
        session = self._session(bad, good, sink_max_retries=0)
        for quantum in range(3):
            session.push_quantum(
                _obs(quantum, {"membus": np.zeros(4, dtype=np.int64)})
            )
        assert [q for q, _r in good.reports] == [0, 1, 2]

    def test_transient_failure_recovers_via_retry(self):
        sink = _FlakySink(fail_first=1)
        session = self._session(sink, sink_max_retries=2)
        session.push_quantum(_obs(0, {"membus": np.zeros(4, dtype=np.int64)}))
        assert sink.quanta == [0]  # first attempt failed, retry landed

    def test_backoff_is_exponential(self):
        delays = []
        sink = _FlakySink(fail_first=10_000)
        session = self._session(
            sink, sink_max_retries=3, sink_backoff_base=0.05,
            sleep=delays.append,
        )
        session.push_quantum(_obs(0, {"membus": np.zeros(4, dtype=np.int64)}))
        assert delays == [0.05, 0.1, 0.2]

    def test_quarantine_after_fail_limit(self):
        sink = _FlakySink(fail_first=10_000)
        session = self._session(
            sink, sink_max_retries=0, sink_fail_limit=2
        )
        for quantum in range(5):
            session.push_quantum(
                _obs(quantum, {"membus": np.zeros(4, dtype=np.int64)})
            )
        # Two exhausted dispatches quarantine the sink; no further attempts.
        assert sink.attempts == 2

    def test_on_close_guaranteed_for_every_sink(self):
        """Regression: a quarantined or mid-list-failing sink still gets
        on_close, and a failing on_close doesn't rob later sinks."""
        quarantined = _FlakySink(fail_first=10_000)
        close_fails = _FlakySink(fail_close=True)
        last = _FlakySink()
        session = self._session(
            quarantined, close_fails, last,
            sink_max_retries=0, sink_fail_limit=1,
        )
        session.push_quantum(_obs(0, {"membus": np.zeros(4, dtype=np.int64)}))
        report = session.close()
        assert report is not None
        assert quarantined.closed == 1
        assert last.closed == 1

    def test_sink_errors_counted(self):
        metrics = MetricsRegistry()
        sink = _FlakySink(fail_first=1)
        session = self._session(sink, sink_max_retries=1, metrics=metrics)
        session.push_quantum(_obs(0, {"membus": np.zeros(4, dtype=np.int64)}))
        snapshot = metrics.to_dict()["metrics"]
        assert snapshot["cchunter_sink_errors_total"]["series"][0]["value"] == 1
        assert (
            snapshot["cchunter_sink_retries_total"]["series"][0]["value"] == 1
        )


# ---------------------------------------------------------------------------
# Property: no analyzer ever raises on a well-typed observation stream.
# ---------------------------------------------------------------------------

_counts = st.one_of(
    st.just(None),  # channel readout lost this quantum
    st.lists(
        st.integers(min_value=0, max_value=0xFFFF), min_size=0, max_size=32
    ),
)


@st.composite
def _streams(draw):
    quanta = draw(st.integers(min_value=1, max_value=12))
    stream = []
    for quantum in range(quanta):
        counts = {}
        burst = draw(_counts)
        if burst is not None:
            counts["membus"] = np.asarray(burst, dtype=np.int64)
        n = draw(st.integers(min_value=0, max_value=24))
        times = np.sort(
            draw(st.lists(
                st.integers(min_value=0, max_value=999),
                min_size=n, max_size=n,
            ))
        ).astype(np.int64) + quantum * 1000
        contexts = st.lists(
            st.integers(min_value=0, max_value=7), min_size=n, max_size=n
        )
        conflicts = ConflictRecords(
            times=times,
            replacers=np.asarray(draw(contexts), dtype=np.int64),
            victims=np.asarray(draw(contexts), dtype=np.int64),
        )
        stream.append(_obs(quantum, counts, conflicts))
    return stream


class TestAnalyzersNeverRaise:
    @settings(max_examples=60, deadline=None)
    @given(stream=_streams())
    def test_well_typed_streams_only_move_health(self, stream):
        session = DetectionSession()
        session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
        session.add_analyzer(OscillationAnalyzer(
            unit="cache", max_lag=50, min_train_events=8
        ))
        for obs in stream:
            session.push_quantum(obs)
        report = session.current_verdicts()
        assert len(report.verdicts) == 2
        for verdict in report.verdicts:
            assert verdict.health in ("ok", "degraded")
