"""Session close hardening: idempotency, sealing, spec-built sessions.

The multi-tenant service (repro.serve) closes sessions from several
paths — tenant ``bye``, LRU eviction, idle expiry, and supervised
shutdown — so ``close()`` must be safe to call from all of them in any
order, and a closed session must reject late observations loudly.
"""

import numpy as np
import pytest

from repro.errors import DetectionError
from repro.pipeline import (
    ChannelKind,
    ChannelSpec,
    DetectionSession,
    QuantumObservation,
    build_session_from_specs,
)


def _obs(quantum=0, counts=(1, 0, 2)):
    return QuantumObservation(
        quantum=quantum,
        t0=quantum * 30,
        t1=(quantum + 1) * 30,
        counts={"membus": np.array(counts, dtype=np.int64)},
    )


class _CountingSink:
    def __init__(self):
        self.quanta = 0
        self.closes = 0

    def on_quantum(self, quantum, report):
        self.quanta += 1

    def on_close(self, report):
        self.closes += 1


class _FailingQuantumSink(_CountingSink):
    def on_quantum(self, quantum, report):
        super().on_quantum(quantum, report)
        raise RuntimeError("sink down")


class _ReentrantCloseSink(_CountingSink):
    """A panicking supervisor callback that closes from inside on_close."""

    def __init__(self, session):
        super().__init__()
        self.session = session
        self.reentrant_report = None

    def on_close(self, report):
        super().on_close(report)
        self.reentrant_report = self.session.close()


class TestCloseIdempotency:
    def test_double_close_returns_same_report(self):
        sink = _CountingSink()
        session = DetectionSession(sinks=[sink])
        session.push_quantum(_obs(0))
        first = session.close()
        assert session.closed
        assert session.close() is first
        assert sink.closes == 1

    def test_close_before_any_push(self):
        session = DetectionSession()
        assert not session.closed
        report = session.close()
        assert report.verdicts == ()
        assert session.close() is report

    def test_push_after_close_rejected(self):
        session = DetectionSession()
        session.push_quantum(_obs(0))
        session.close()
        with pytest.raises(DetectionError, match="closed"):
            session.push_quantum(_obs(1))
        # The seal is permanent: the rejected push left no trace.
        assert session.quanta_pushed == 1

    def test_reentrant_close_from_sink_gets_sealed_report(self):
        session = DetectionSession(sleep=lambda _s: None)
        sink = _ReentrantCloseSink(session)
        session.sinks.append(sink)
        report = session.close()
        assert sink.closes == 1
        assert sink.reentrant_report is report


class TestQuarantinedSinkClose:
    def test_quarantined_sink_still_gets_on_close(self):
        bad = _FailingQuantumSink()
        good = _CountingSink()
        session = DetectionSession(
            sinks=[bad, good],
            sink_max_retries=0,
            sink_fail_limit=2,
            sleep=lambda _s: None,
        )
        for q in range(4):
            session.push_quantum(_obs(q))
        # bad exhausted fail_limit dispatches -> quarantined from
        # on_quantum; good kept receiving everything.
        assert bad.quanta == 2
        assert good.quanta == 4
        session.close()
        assert bad.closes == 1
        assert good.closes == 1

    def test_raising_on_close_does_not_starve_other_sinks(self):
        class _FailingCloseSink(_CountingSink):
            def on_close(self, report):
                super().on_close(report)
                raise RuntimeError("close failed")

        bad = _FailingCloseSink()
        good = _CountingSink()
        session = DetectionSession(
            sinks=[bad, good], sink_max_retries=0, sleep=lambda _s: None
        )
        report = session.close()
        assert bad.closes == 1
        assert good.closes == 1
        # The caller still gets the sealed report despite the bad sink.
        assert session.close() is report


class TestBuildSessionFromSpecs:
    SPECS = (
        ChannelSpec(name="membus", kind=ChannelKind.BURST, dt=30),
        ChannelSpec(name="cache", kind=ChannelKind.CONFLICT),
    )

    def test_units_and_methods(self):
        session = build_session_from_specs(self.SPECS)
        assert session.units == ("membus", "cache")
        report = session.current_verdicts()
        assert report.verdict_for("membus").method == "burst"
        assert report.verdict_for("cache").method == "oscillation"

    def test_matches_source_built_session(self):
        """Spec-built and source-built sessions see identical verdicts.

        This is the contract the serve path relies on: a tenant session
        built from the channel list in its hello frame must be
        bit-identical to one built off the live EventSource.
        """
        from repro.pipeline import build_session

        class _SpecOnlySource:
            quantum_cycles = 30

            def channels(self):
                return TestBuildSessionFromSpecs.SPECS

            def subscribe(self, consumer):
                pass

        rng = np.random.default_rng(11)
        via_specs = build_session_from_specs(self.SPECS)
        via_source = build_session(_SpecOnlySource())
        for q in range(20):
            counts = rng.poisson(2.0, size=3)
            for session in (via_specs, via_source):
                session.push_quantum(_obs(q, counts=counts))
        assert via_specs.close() == via_source.close()
