"""Property tests: health-machine composition under interleaving.

The serve path composes the health ladder three ways at once — fault
tags from the wire (``shed:*``/``lost:*``), analyzer push errors, and
the session's quarantine overlay — so these properties pin the algebra:
``worst()`` is a commutative idempotent max, per-unit health moves one
way only under ANY interleaving of events, and shed gaps always surface
in the verdict's notes (shedding is never silent).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import (
    BurstAnalyzer,
    DetectionSession,
    Health,
    QuantumObservation,
    worst,
)

pytestmark = pytest.mark.resilience

HEALTHS = st.sampled_from(list(Health))


class TestWorstRollUp:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(HEALTHS))
    def test_worst_is_max_by_rank(self, values):
        assert worst(values).rank == max(
            (v.rank for v in values), default=0
        )

    @settings(max_examples=100, deadline=None)
    @given(st.lists(HEALTHS), st.randoms())
    def test_order_invariant(self, values, rng):
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert worst(values) is worst(shuffled)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(HEALTHS), HEALTHS)
    def test_monotone_under_extension(self, values, extra):
        assert worst([*values, extra]).rank >= worst(values).rank
        assert worst([*values, extra]).rank >= extra.rank

    @settings(max_examples=50, deadline=None)
    @given(st.lists(HEALTHS, min_size=1))
    def test_idempotent(self, values):
        combined = worst(values)
        assert worst([combined, *values]) is combined


class _ScriptedAnalyzer(BurstAnalyzer):
    """Raises on push exactly where the script says to."""

    def __init__(self, script, **kwargs):
        kwargs.setdefault("unit", "membus")
        kwargs.setdefault("dt", 100)
        super().__init__(**kwargs)
        self.script = script
        self.cursor = 0

    def push(self, obs):
        index = self.cursor
        self.cursor += 1
        if index < len(self.script) and self.script[index] == "error":
            raise RuntimeError("scripted failure")
        super().push(obs)


# One event per quantum: a clean push, a push carrying a shed/lost
# fault tag, or an analyzer error.
EVENTS = st.lists(
    st.sampled_from(["clean", "shed", "lost", "error"]),
    min_size=1,
    max_size=60,
)


def _obs(quantum, faults=()):
    return QuantumObservation(
        quantum=quantum,
        t0=quantum * 1000,
        t1=(quantum + 1) * 1000,
        counts={"membus": np.array([1, 0, 2, 1], dtype=np.int64)},
        faults=tuple(faults),
    )


class TestOneWayLadder:
    @settings(max_examples=60, deadline=None)
    @given(EVENTS, st.integers(1, 6))
    def test_health_rank_never_decreases(self, events, fail_after):
        """Under ANY interleaving of clean/faulted/erroring quanta the
        combined unit health climbs the OK→DEGRADED→FAILED ladder one
        way, and FAILED appears only via the consecutive-error rule."""
        session = DetectionSession(fail_after=fail_after)
        session.add_analyzer(_ScriptedAnalyzer(script=events))
        ranks = []
        consecutive = 0
        max_consecutive = 0
        for quantum, event in enumerate(events):
            faults = {"shed": ("shed:*",), "lost": ("lost:*",)}.get(
                event, ()
            )
            session.push_quantum(_obs(quantum, faults))
            consecutive = consecutive + 1 if event == "error" else 0
            max_consecutive = max(max_consecutive, consecutive)
            ranks.append(session.unit_health("membus").rank)
        assert ranks == sorted(ranks), "health moved back down the ladder"
        final = session.unit_health("membus")
        if any(e != "clean" for e in events):
            assert final.rank >= Health.DEGRADED.rank
        else:
            assert final is Health.OK
        if max_consecutive >= fail_after:
            assert final is Health.FAILED
        if final is Health.FAILED:
            assert max_consecutive >= fail_after
        # The verdict reports the same combined health.
        verdict = session.close().verdict_for("membus")
        assert verdict.health == final.value

    @settings(max_examples=60, deadline=None)
    @given(EVENTS)
    def test_shed_gaps_surface_in_notes(self, events):
        """Every run containing shed/lost quanta names them in the
        verdict notes with per-kind tallies — shedding is never
        silent."""
        session = DetectionSession()
        session.add_analyzer(BurstAnalyzer(unit="membus", dt=100))
        tallies = {"shed": 0, "lost": 0}
        for quantum, event in enumerate(events):
            faults = ()
            if event in tallies:
                tallies[event] += 1
                faults = (f"{event}:*",)
            session.push_quantum(_obs(quantum, faults))
        verdict = session.close().verdict_for("membus")
        notes = " ".join(verdict.notes)
        flagged = sum(tallies.values())
        if flagged:
            assert verdict.health == "degraded"
            assert f"{flagged} flagged input fault(s)" in notes
            for kind, count in tallies.items():
                if count:
                    assert f"{kind} x{count}" in notes
                else:
                    assert kind not in notes
        else:
            assert "fault" not in notes
