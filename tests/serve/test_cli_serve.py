"""CLI surface of the detection service: ``repro serve`` / ``repro stream``."""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.serve import DetectionService, ServeConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0
        assert args.shards == 2
        assert args.queue_capacity == 64
        assert args.duration is None

    def test_stream_requires_tenant_and_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--port", "1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--tenant", "a"])

    def test_stream_defaults(self):
        args = build_parser().parse_args(
            ["stream", "--tenant", "a", "--port", "9"]
        )
        assert args.profile == "covert"
        assert args.quanta == 40
        assert args.inject is None


class _ServiceThread:
    """A DetectionService on a background event loop, for in-process
    ``repro stream`` tests (main() owns the foreground loop)."""

    def __init__(self, config=None):
        self.config = config or ServeConfig(port=0)
        self.port = None
        self._loop = None
        self._stop = None
        self._started = threading.Event()

    def __enter__(self):
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()), daemon=True
        )
        self._thread.start()
        assert self._started.wait(10), "service did not come up"
        return self

    async def _amain(self):
        service = DetectionService(config=self.config)
        await service.start()
        self.port = service.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started.set()
        await self._stop.wait()
        await service.stop()

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)


class TestStreamCommand:
    def test_covert_exits_detected(self, capsys):
        with _ServiceThread() as svc:
            code = main([
                "stream", "--tenant", "acme", "--port", str(svc.port),
                "--profile", "covert", "--quanta", "24",
            ])
        assert code == 3
        out = capsys.readouterr().out
        assert "COVERT TIMING CHANNEL LIKELY" in out
        assert "folded 24, shed 0" in out

    def test_benign_exits_clean(self, capsys):
        with _ServiceThread() as svc:
            code = main([
                "stream", "--tenant", "calm", "--port", str(svc.port),
                "--profile", "benign", "--quanta", "12",
            ])
        assert code == 0
        assert "no covert" in capsys.readouterr().out

    def test_flaky_link_degrades_but_still_detects(self, capsys):
        with _ServiceThread() as svc:
            code = main([
                "stream", "--tenant", "flaky", "--port", str(svc.port),
                "--profile", "covert", "--quanta", "30",
                "--inject", "drop:0.2", "--seed", "7",
            ])
        assert code == 3
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "lost" in out

    def test_json_output(self, capsys):
        with _ServiceThread() as svc:
            code = main([
                "stream", "--tenant", "robot", "--port", str(svc.port),
                "--profile", "benign", "--quanta", "8", "--json",
            ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        payload = json.loads(lines[-1])
        assert payload["any_detected"] is False
        assert payload["verdicts"][0]["unit"] == "membus"

    def test_unreachable_service_exits_9(self, capsys):
        code = main([
            "stream", "--tenant", "lost", "--port", "1", "--quanta", "2",
        ])
        assert code == 9
        assert "cannot reach" in capsys.readouterr().err

    def test_bad_inject_spec_is_usage_error(self, capsys):
        with _ServiceThread() as svc:
            code = main([
                "stream", "--tenant", "x", "--port", str(svc.port),
                "--inject", "teleport:0.5",
            ])
        assert code == 2
        assert "unknown frame fault" in capsys.readouterr().err


def _spawn_serve(*extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=str(REPO_ROOT),
    )


@pytest.mark.resilience
class TestServeCommand:
    def test_duration_runs_and_exits_clean(self):
        proc = _spawn_serve("--duration", "0.3")
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "listening on" in out
        assert "0 tenant(s) served" in out
        assert "draining" in err

    def test_sigint_drains_and_summarizes(self, capsys):
        proc = _spawn_serve()
        try:
            ready = proc.stdout.readline()
            port = int(re.search(r":(\d+) ", ready).group(1))
            code = main([
                "stream", "--tenant", "acme", "--port", str(port),
                "--profile", "covert", "--quanta", "16",
            ])
            assert code == 3
            capsys.readouterr()
        finally:
            proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "1 tenant(s) served" in out
        assert re.search(r"acme\s+folded=16", out)
        assert "DETECTED" in out
