"""DetectionService: multiplexing, backpressure, shedding, lifecycle.

The chaos acceptance drill at the bottom is the PR's contract: under
frame drops, stalls, garbage, and 2x-over-capacity load the service
never raises out of the event loop, sheds with bounded queues, reports
affected tenants DEGRADED (never silently OK), and a clean tenant's
verdicts stay bit-identical to an in-process DetectionSession.
"""

import asyncio

import pytest

from repro.errors import ServeError, ServeUnavailableError
from repro.faults.wire import FlakyFrameLink
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import build_session_from_specs
from repro.serve import (
    DetectionService,
    ServeClient,
    ServeConfig,
    stream_tenant,
)
from repro.serve.traffic import (
    CHANNELS,
    benign_observations,
    covert_observations,
)


def run(coro):
    """Run a scenario and fail the test on any unhandled loop error."""
    failures = []

    async def wrapper():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(
            lambda _loop, ctx: failures.append(ctx.get("message", str(ctx)))
        )
        return await coro

    result = asyncio.run(wrapper())
    assert not failures, f"unhandled event-loop errors: {failures}"
    return result


def reference_report(observations):
    session = build_session_from_specs(CHANNELS)
    for obs in observations:
        session.push_quantum(obs)
    return session.close()


class TestCleanPath:
    def test_covert_and_benign_tenants(self):
        async def scenario():
            service = DetectionService(ServeConfig(verdict_every=4))
            host, port = await service.start()
            try:
                cov, ben = await asyncio.gather(
                    stream_tenant(
                        host, port, "cov", CHANNELS,
                        covert_observations(40, seed=1),
                    ),
                    stream_tenant(
                        host, port, "ben", CHANNELS,
                        benign_observations(40, seed=2),
                    ),
                )
            finally:
                stats = await service.stop()
            return cov, ben, stats

        cov, ben, stats = run(scenario())
        assert cov.report.any_detected and cov.report.health == "ok"
        assert not ben.report.any_detected and ben.report.health == "ok"
        assert cov.goodbye.received == 40 and cov.goodbye.shed == 0
        # Periodic verdict frames arrived (coalesced: the outbox keeps
        # only the newest, so the count is load-dependent but >= 1).
        assert cov.verdicts
        assert cov.verdicts[-1].verdicts[0].detected
        assert stats["cov"].any_detected and not stats["ben"].any_detected

    def test_clean_tenant_bit_identical_to_in_process(self):
        async def scenario():
            service = DetectionService(ServeConfig())
            host, port = await service.start()
            try:
                result = await stream_tenant(
                    host, port, "clean", CHANNELS,
                    covert_observations(32, seed=9),
                )
            finally:
                await service.stop()
            return result

        result = run(scenario())
        assert result.report == reference_report(
            covert_observations(32, seed=9)
        )

    def test_serve_metrics_populated(self):
        registry = MetricsRegistry()

        async def scenario():
            service = DetectionService(ServeConfig(), metrics=registry)
            host, port = await service.start()
            try:
                await stream_tenant(
                    host, port, "m", CHANNELS,
                    benign_observations(10, seed=4),
                )
            finally:
                await service.stop()

        run(scenario())
        text = registry.render_prometheus()
        assert "cchunter_serve_connections_total 1" in text
        assert "cchunter_serve_folded_total 10" in text
        assert "cchunter_serve_obs_total 10" in text


class TestAdmissionAndLifecycle:
    def test_tenant_limit_refuses_with_unavailable(self):
        async def scenario():
            service = DetectionService(ServeConfig(max_tenants=1))
            host, port = await service.start()
            try:
                await stream_tenant(
                    host, port, "first", CHANNELS,
                    benign_observations(4, seed=1),
                )
                # first is now idle but still known; second is refused.
                with pytest.raises(ServeUnavailableError, match="limit"):
                    await stream_tenant(
                        host, port, "second", CHANNELS,
                        benign_observations(4, seed=2),
                    )
            finally:
                await service.stop()

        run(scenario())

    def test_duplicate_live_tenant_refused(self):
        async def scenario():
            service = DetectionService(ServeConfig())
            host, port = await service.start()
            try:
                first = ServeClient(host, port)
                await first.connect("dup", CHANNELS)
                second = ServeClient(host, port)
                with pytest.raises(ServeUnavailableError, match="live"):
                    await second.connect("dup", CHANNELS)
                await first.aclose()
                await second.aclose()
            finally:
                await service.stop()

        run(scenario())

    def test_reconnect_resumes_resident_session(self):
        """A tenant that vanishes mid-stream (no bye) can reconnect and
        finish; the combined stream matches one in-process session."""
        observations = list(covert_observations(40, seed=5))

        async def scenario():
            service = DetectionService(ServeConfig())
            host, port = await service.start()
            try:
                first = ServeClient(host, port)
                await first.connect("resume", CHANNELS)
                for obs in observations[:20]:
                    await first.send(obs)
                await first.aclose()  # vanish without bye
                await asyncio.sleep(0.05)  # let the server notice EOF
                result = await stream_tenant(
                    host, port, "resume", CHANNELS, observations[20:]
                )
            finally:
                await service.stop()
            return result

        result = run(scenario())
        assert result.goodbye.received == 40
        assert result.report == reference_report(observations)

    def test_reconnect_with_different_channels_refused(self):
        async def scenario():
            service = DetectionService(ServeConfig())
            host, port = await service.start()
            try:
                first = ServeClient(host, port)
                await first.connect("shape", CHANNELS)
                await first.aclose()
                await asyncio.sleep(0.05)
                with pytest.raises(
                    ServeUnavailableError, match="different channels"
                ):
                    await stream_tenant(
                        host, port, "shape", CHANNELS[:1] * 0 or (
                            CHANNELS[0].__class__(
                                name="other", kind=CHANNELS[0].kind, dt=500
                            ),
                        ),
                        benign_observations(2, seed=0),
                    )
            finally:
                await service.stop()

        run(scenario())

    def test_lru_eviction_of_disconnected_tenant(self):
        async def scenario():
            service = DetectionService(
                ServeConfig(max_resident_sessions=1)
            )
            host, port = await service.start()
            try:
                first = ServeClient(host, port)
                await first.connect("old", CHANNELS)
                for obs in benign_observations(4, seed=1):
                    await first.send(obs)
                await first.aclose()
                await asyncio.sleep(0.05)
                # Admitting a second tenant forces eviction of "old".
                await stream_tenant(
                    host, port, "new", CHANNELS,
                    benign_observations(4, seed=2),
                )
                evicted = service.tenant_stats("old")
                # Reconnecting the evicted tenant rebuilds a fresh
                # session and marks the history loss in its verdicts.
                revived = await stream_tenant(
                    host, port, "old", CHANNELS,
                    benign_observations(4, seed=3),
                )
            finally:
                await service.stop()
            return evicted, revived

        evicted, revived = run(scenario())
        assert not evicted.resident
        assert revived.report.health == "degraded"
        notes = " ".join(
            note
            for verdict in revived.report.verdicts
            for note in verdict.notes
        )
        assert "evicted" in notes

    def test_idle_tenant_expires(self):
        async def scenario():
            service = DetectionService(ServeConfig(idle_expiry=0.2))
            host, port = await service.start()
            try:
                client = ServeClient(host, port)
                await client.connect("sleepy", CHANNELS)
                for obs in benign_observations(3, seed=1):
                    await client.send(obs)
                await client.aclose()
                await asyncio.sleep(0.45)
                with pytest.raises(ServeError, match="unknown tenant"):
                    service.tenant_stats("sleepy")
            finally:
                await service.stop()

        run(scenario())

    def test_stop_pushes_goodbye_to_connected_tenants(self):
        """Supervised shutdown: a mid-stream tenant still gets its final
        verdicts."""

        async def scenario():
            service = DetectionService(ServeConfig())
            host, port = await service.start()
            client = ServeClient(host, port)
            await client.connect("midstream", CHANNELS)
            for obs in benign_observations(6, seed=8):
                await client.send(obs)
            await asyncio.sleep(0.05)  # let folds settle
            await service.stop()
            goodbye = await asyncio.wait_for(client._goodbye, timeout=2.0)
            await client.aclose()
            return goodbye

        goodbye = run(scenario())
        assert goodbye.received == 6
        assert [v.unit for v in goodbye.report.verdicts] == [
            "membus"
        ]

    def test_stop_is_idempotent(self):
        async def scenario():
            service = DetectionService(ServeConfig())
            await service.start()
            first = await service.stop()
            second = await service.stop()
            return first, second

        first, second = run(scenario())
        assert first == second == {}


class TestDegradedPaths:
    def test_dropped_frames_surface_as_lost_and_degraded(self):
        async def scenario():
            service = DetectionService(ServeConfig())
            host, port = await service.start()
            try:
                link = FlakyFrameLink("drop:0.2", seed=7)
                result = await stream_tenant(
                    host, port, "lossy", CHANNELS,
                    covert_observations(60, seed=3), link=link,
                )
            finally:
                stats = await service.stop()
            return link, result, stats

        link, result, stats = run(scenario())
        assert link.dropped > 0
        assert result.report.health == "degraded"
        assert result.report.any_detected  # detection survives loss
        assert stats["lossy"].lost > 0
        notes = " ".join(
            n for v in result.report.verdicts for n in v.notes
        )
        assert "lost" in notes

    def test_garbage_frames_answered_not_fatal(self):
        async def scenario():
            service = DetectionService(ServeConfig())
            host, port = await service.start()
            try:
                link = FlakyFrameLink("garbage:0.3", seed=11)
                result = await stream_tenant(
                    host, port, "garbled", CHANNELS,
                    benign_observations(40, seed=6), link=link,
                )
            finally:
                await service.stop()
            return link, result

        link, result = run(scenario())
        assert link.garbled > 0
        assert result.errors, "expected non-fatal error frames"
        assert all(not e.fatal for e in result.errors)
        assert all(e.code == "decode" for e in result.errors)
        # The stream survived to a clean goodbye despite the garbage.
        assert result.goodbye.received > 0

    def test_overload_sheds_bounded_and_degraded(self):
        cfg = ServeConfig(
            queue_capacity=8,
            initial_credits=8,
            credit_batch=1,
            overload_queue_fraction=0.5,
            shed_sample_every=2,
            fold_batch=2,
            shards=1,
        )

        async def scenario():
            service = DetectionService(cfg)
            host, port = await service.start()
            try:
                results = await asyncio.gather(
                    *(
                        stream_tenant(
                            host, port, f"t{i}", CHANNELS,
                            covert_observations(60, seed=i),
                        )
                        for i in range(6)
                    )
                )
            finally:
                await service.stop()
            return results

        results = run(scenario())
        shed_total = sum(r.goodbye.shed for r in results)
        assert shed_total > 0, "overload scenario did not shed"
        for result in results:
            assert result.goodbye.received + result.goodbye.shed == 60
            if result.goodbye.shed:
                # Shedding is never silent: health degrades and the
                # notes name the shed gaps.
                assert result.report.health == "degraded"
                notes = " ".join(
                    n for v in result.report.verdicts for n in v.notes
                )
                assert "shed" in notes


@pytest.mark.resilience
class TestChaosAcceptance:
    def test_chaos_drill(self):
        """20% drops + stalls + garbage on flaky tenants, 2x-capacity
        load, one clean tenant — the acceptance contract."""
        # Credits are the binding backpressure here: the credit window
        # (8) sits below the sampling-shed threshold (16), so an honest
        # client is throttled rather than shed — shedding is reserved
        # for clients that outrun their credits (covered separately in
        # TestDegradedPaths).
        cfg = ServeConfig(
            queue_capacity=32,
            initial_credits=8,
            credit_batch=2,
            overload_queue_fraction=0.5,
            shed_sample_every=2,
            fold_batch=4,
            shards=2,
            max_tenants=32,
        )
        clean_obs = list(covert_observations(48, seed=100))

        async def scenario():
            service = DetectionService(cfg)
            host, port = await service.start()
            try:
                flaky = [
                    stream_tenant(
                        host, port, f"flaky{i}", CHANNELS,
                        covert_observations(48, seed=i),
                        link=FlakyFrameLink(
                            "drop:0.2,stall:0.05:0.001,garbage:0.05",
                            seed=i,
                        ),
                    )
                    for i in range(8)
                ]
                clean = stream_tenant(
                    host, port, "clean", CHANNELS, clean_obs
                )
                results = await asyncio.gather(clean, *flaky)
            finally:
                stats = await service.stop()
            return results, stats

        results, stats = run(scenario())
        clean_result, flaky_results = results[0], results[1:]

        # The clean tenant is bit-identical to an in-process session.
        assert clean_result.report == reference_report(clean_obs)
        assert clean_result.goodbye.shed == 0

        # Every impaired tenant is DEGRADED, never silently OK.
        for result in flaky_results:
            impaired = (
                result.goodbye.shed > 0
                or stats[result.tenant].lost > 0
            )
            if impaired:
                assert result.report.health == "degraded"
            # Accounting is complete: nothing silently vanished
            # (frames lost in transit are counted by the server).
            assert (
                result.goodbye.received
                + result.goodbye.shed
                + stats[result.tenant].lost
                >= 44
            )
        assert any(
            stats[r.tenant].lost > 0 for r in flaky_results
        ), "drop injection never triggered"
