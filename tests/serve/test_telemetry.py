"""The live telemetry plane on DetectionService, end to end.

Covers the admin endpoint routes against a running service, the
coalescing tally, span attribution under interleaved shard workers,
and the PR's acceptance drill: a covert tenant behind a lossy link
drives a burn-rate alert out of every emission path at once (JSONL,
counter, ``/tenants``, ``repro top``), client and server spans merge
into one trace, and scraping never perturbs verdicts.
"""

import asyncio
import json

import pytest

from repro.errors import ServeError
from repro.faults.wire import FlakyFrameLink
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    disable_profiling,
    enable_profiling,
)
from repro.obs.slo import BurnRateRule, SloTracker
from repro.obs.telemetry import fetch
from repro.obs.tracing import (
    SpanRecorder,
    disable_tracing,
    enable_tracing,
    get_recorder,
    merge_remote_trace,
    new_trace_id,
)
from repro.pipeline import build_session_from_specs
from repro.report.top import render_fleet
from repro.serve import (
    DetectionService,
    ServeClient,
    ServeConfig,
    stream_tenant,
)
from repro.serve.traffic import (
    CHANNELS,
    benign_observations,
    covert_observations,
)


@pytest.fixture(autouse=True)
def _globals_off():
    """Tracing and profiling start and end disabled in every test."""
    disable_tracing()
    disable_profiling()
    yield
    disable_tracing()
    disable_profiling()


def run(coro):
    failures = []

    async def wrapper():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(
            lambda _loop, ctx: failures.append(ctx.get("message", str(ctx)))
        )
        return await coro

    result = asyncio.run(wrapper())
    assert not failures, f"unhandled event-loop errors: {failures}"
    return result


def reference_report(observations):
    session = build_session_from_specs(CHANNELS)
    for obs in observations:
        session.push_quantum(obs)
    return session.close()


def admin_config(**kwargs):
    kwargs.setdefault("admin_port", 0)
    kwargs.setdefault("verdict_every", 4)
    return ServeConfig(**kwargs)


class TestAdminEndpoints:
    def test_all_routes_live(self):
        async def scenario():
            service = DetectionService(
                admin_config(), metrics=MetricsRegistry()
            )
            host, port = await service.start()
            admin = service.admin_port
            try:
                await stream_tenant(
                    host, port, "cov", CHANNELS,
                    covert_observations(24, seed=1),
                )
                results = {}
                for path in (
                    "/metrics", "/healthz", "/readyz", "/tenants",
                    "/tenants/cov", "/tenants/nobody", "/profile",
                ):
                    results[path] = await fetch(host, admin, path)
            finally:
                await service.stop()
            return results

        results = run(scenario())
        status, body = results["/metrics"]
        assert status == 200
        assert "cchunter_serve_folded_total" in body

        status, body = results["/healthz"]
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "alive" and doc["tenants"] == 1

        status, body = results["/readyz"]
        assert status == 200 and json.loads(body)["ready"] is True

        status, body = results["/tenants"]
        assert status == 200
        doc = json.loads(body)
        assert doc["format"] == "repro.serve.tenants/v1"
        assert [t["tenant"] for t in doc["tenants"]] == ["cov"]

        status, body = results["/tenants/cov"]
        assert status == 200
        doc = json.loads(body)
        assert doc["received"] == 24 and doc["any_detected"] is True
        assert doc["last_verdict"]["health"] == "ok"
        assert doc["last_verdict"]["latency_s"] is not None
        assert "coalesced" in doc and "credit" in doc
        assert set(doc["slo"]["objectives"]) == {
            "verdict_latency", "shed", "health",
        }

        assert results["/tenants/nobody"][0] == 404
        # Profiling is off, so the profile route reports absence.
        assert results["/profile"][0] == 404

    def test_profile_route_with_profiling_enabled(self):
        async def scenario():
            enable_profiling()
            service = DetectionService(
                admin_config(), metrics=MetricsRegistry()
            )
            host, port = await service.start()
            try:
                await stream_tenant(
                    host, port, "t", CHANNELS,
                    benign_observations(8, seed=2),
                )
                return await fetch(host, service.admin_port, "/profile")
            finally:
                await service.stop()

        status, body = run(scenario())
        assert status == 200
        doc = json.loads(body)
        assert doc["format"] == "repro.obs.profile/v1"
        assert any(
            stage["name"] == "serve.fold" for stage in doc["stages"]
        )

    def test_admin_disabled_by_default(self):
        async def scenario():
            service = DetectionService(
                ServeConfig(), metrics=MetricsRegistry()
            )
            await service.start()
            try:
                with pytest.raises(ServeError):
                    _ = service.admin_port
            finally:
                await service.stop()

        run(scenario())

    def test_readyz_flips_on_drain_and_healthz_on_stop(self):
        async def scenario():
            service = DetectionService(
                admin_config(), metrics=MetricsRegistry()
            )
            await service.start()
            try:
                status, _ctype, body = service._admin_readyz()
                assert status == 200 and json.loads(body)["ready"] is True
                service._draining = True
                status, _ctype, body = service._admin_readyz()
                assert status == 503
                assert json.loads(body)["draining"] is True
            finally:
                service._draining = False
                await service.stop()
            status, _ctype, body = service._admin_healthz()
            assert status == 503 and json.loads(body)["status"] == "stopped"

        run(scenario())


class TestCoalescing:
    def test_outbox_reports_supersession(self):
        from repro.serve.service import _Outbox
        from repro.serve.wire import VerdictFrame

        outbox = _Outbox()
        first = VerdictFrame(quantum=1, verdicts=(), health="ok")
        second = VerdictFrame(quantum=2, verdicts=(), health="ok")
        assert outbox.put_verdict(first) is False
        assert outbox.put_verdict(second) is True
        assert outbox.verdict is second

    def test_coalesced_tally_exposed(self):
        """A verdict-per-quantum burst outruns the writer: the latest-
        wins outbox supersedes frames and the tally surfaces in the
        tenant doc and the labeled counter."""

        async def scenario():
            registry = MetricsRegistry()
            service = DetectionService(
                admin_config(verdict_every=1), metrics=registry
            )
            host, port = await service.start()
            try:
                client = ServeClient(host, port)
                await client.connect("burst", CHANNELS)
                try:
                    for obs in covert_observations(12, seed=3):
                        await client.send(obs)
                    await client.finish()
                finally:
                    await client.aclose()
                status, body = await fetch(
                    host, service.admin_port, "/tenants/burst"
                )
            finally:
                await service.stop()
            return status, json.loads(body), registry.render_prometheus()

        status, doc, exposition = run(scenario())
        assert status == 200
        assert doc["coalesced"] >= 1
        assert (
            'cchunter_serve_verdicts_coalesced_total{tenant="burst"}'
            in exposition
        )


@pytest.mark.resilience
class TestAdminUnderFaults:
    def test_scrape_stays_healthy_during_flaky_stream(self):
        """Frame faults on the data plane never take the admin plane
        down: every poll during a lossy covert stream answers 200."""

        async def scenario():
            service = DetectionService(
                admin_config(), metrics=MetricsRegistry()
            )
            host, port = await service.start()
            admin = service.admin_port
            polls = []
            stop = asyncio.Event()

            async def poller():
                while not stop.is_set():
                    for path in ("/healthz", "/tenants"):
                        status, _body = await fetch(host, admin, path)
                        polls.append(status)
                    await asyncio.sleep(0.01)

            task = asyncio.create_task(poller())
            try:
                result = await stream_tenant(
                    host, port, "flaky", CHANNELS,
                    covert_observations(40, seed=4),
                    link=FlakyFrameLink("drop:0.2,garbage:0.1", seed=9),
                )
            finally:
                stop.set()
                await task
                await service.stop()
            return result, polls

        result, polls = run(scenario())
        assert polls and all(status == 200 for status in polls)
        assert result.goodbye.received >= 1


class TestSpanAttribution:
    def test_interleaved_shards_do_not_cross_contaminate(self):
        """Two tenants folding concurrently on separate shards: every
        server span's tenant attr must agree with its trace id."""

        async def scenario():
            enable_tracing(capacity=4096)
            trace_ids = {
                "alpha": new_trace_id(), "beta": new_trace_id(),
            }
            service = DetectionService(
                admin_config(shards=2), metrics=MetricsRegistry()
            )
            host, port = await service.start()
            try:
                await asyncio.gather(
                    stream_tenant(
                        host, port, "alpha", CHANNELS,
                        covert_observations(20, seed=5),
                        trace_id=trace_ids["alpha"],
                    ),
                    stream_tenant(
                        host, port, "beta", CHANNELS,
                        benign_observations(20, seed=6),
                        trace_id=trace_ids["beta"],
                    ),
                )
            finally:
                await service.stop()
            return trace_ids, get_recorder().to_dicts()

        trace_ids, spans = run(scenario())
        by_trace = {tid: tenant for tenant, tid in trace_ids.items()}
        checked = 0
        for span in spans:
            attrs = span["attrs"]
            if not span["name"].startswith("serve."):
                continue
            if attrs.get("trace_id") is None:
                continue
            assert attrs["tenant"] == by_trace[attrs["trace_id"]], span
            checked += 1
        assert checked >= 20
        names = {s["name"] for s in spans}
        assert {"serve.queue_wait", "serve.fold", "serve.analyze"} <= names

    def test_profiler_survives_interleaved_workers(self):
        """StageProfiler folding two concurrent tenants stays coherent:
        stages nest cleanly and the fold stage is attributed."""

        async def scenario():
            profiler = enable_profiling()
            service = DetectionService(
                admin_config(shards=2), metrics=MetricsRegistry()
            )
            host, port = await service.start()
            try:
                await asyncio.gather(
                    stream_tenant(
                        host, port, "a", CHANNELS,
                        benign_observations(16, seed=7),
                    ),
                    stream_tenant(
                        host, port, "b", CHANNELS,
                        benign_observations(16, seed=8),
                    ),
                )
            finally:
                await service.stop()
            return profiler.to_dict()

        doc = run(scenario())
        fold_stages = [
            stage for stage in doc["stages"]
            if stage["name"] == "serve.fold"
        ]
        assert fold_stages
        total_fold_calls = sum(stage["calls"] for stage in fold_stages)
        assert total_fold_calls == 32


@pytest.mark.resilience
class TestEndToEndTelemetry:
    """The acceptance drill for the telemetry plane as one story."""

    RULES = (
        BurnRateRule(
            "fast_burn", short_window_s=30.0, long_window_s=120.0,
            threshold=2.0, min_samples=4,
        ),
    )

    def test_covert_tenant_fires_alert_and_traces_correlate(
        self, tmp_path
    ):
        alerts_path = tmp_path / "alerts.jsonl"

        async def scenario():
            enable_tracing(capacity=8192)
            registry = MetricsRegistry()
            slo = SloTracker(
                rules=self.RULES, metrics=registry,
                alerts_path=str(alerts_path),
            )
            service = DetectionService(
                admin_config(), metrics=registry, slo=slo
            )
            host, port = await service.start()
            trace_id = new_trace_id()
            client_rec = SpanRecorder(capacity=4096)
            try:
                result = await stream_tenant(
                    host, port, "covert", CHANNELS,
                    covert_observations(40, seed=10),
                    link=FlakyFrameLink("drop:0.25", seed=21),
                    trace_id=trace_id,
                    recorder=client_rec,
                )
                status, tenants_body = await fetch(
                    host, service.admin_port, "/tenants"
                )
                assert status == 200
            finally:
                await service.stop()
            merged = merge_remote_trace(
                client_rec, get_recorder(),
                trace_id=trace_id, names=("client", "server"),
            )
            return (
                result, json.loads(tenants_body),
                registry.render_prometheus(), merged,
            )

        result, tenants_doc, exposition, merged = run(scenario())

        # The covert channel is still detected through the loss.
        assert result.report.any_detected

        # 1. The alert fired into the JSONL archive...
        lines = alerts_path.read_text().splitlines()
        assert lines
        alert = json.loads(lines[0])
        assert alert["format"] == "repro.obs.alert/v1"
        assert alert["tenant"] == "covert"
        assert alert["objective"] == "shed"
        assert alert["burn_short"] >= alert["threshold"]

        # 2. ...and the labeled counter...
        assert (
            'cchunter_alerts_total{rule="fast_burn",tenant="covert"}'
            in exposition
        )

        # 3. ...and the tenant is flagged in /tenants and repro top.
        [tenant_doc] = tenants_doc["tenants"]
        assert tenant_doc["slo"]["alerts_total"] >= 1
        assert {"rule": "fast_burn", "objective": "shed"} in (
            tenant_doc["slo"]["firing"]
        )
        rendered = "\n".join(render_fleet(tenants_doc))
        assert "covert" in rendered
        assert "fast_burn:shed" in rendered
        assert "DETECTED" in rendered

        # 4. Client and server spans share one trace.
        spans = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        names = {s["name"] for s in spans}
        assert {
            "client.emit", "client.wire",
            "serve.queue_wait", "serve.fold", "serve.analyze",
        } <= names
        trace_ids = {s["args"]["trace_id"] for s in spans}
        assert len(trace_ids) == 1
        client_pids = {s["pid"] for s in spans if s["name"].startswith("client.")}
        server_pids = {s["pid"] for s in spans if s["name"].startswith("serve.")}
        assert client_pids == {0} and server_pids == {1}

    def test_scraping_never_perturbs_verdicts(self):
        """Verdicts with a hot scraper attached are bit-identical to
        verdicts without one, and to an in-process session."""
        observations = list(covert_observations(24, seed=12))

        async def scraped():
            service = DetectionService(
                admin_config(), metrics=MetricsRegistry()
            )
            host, port = await service.start()
            admin = service.admin_port
            stop = asyncio.Event()

            async def scraper():
                while not stop.is_set():
                    for path in ("/metrics", "/tenants", "/healthz"):
                        await fetch(host, admin, path)
                    await asyncio.sleep(0.005)

            task = asyncio.create_task(scraper())
            try:
                result = await stream_tenant(
                    host, port, "t", CHANNELS, observations
                )
            finally:
                stop.set()
                await task
                await service.stop()
            return result

        async def unscraped():
            service = DetectionService(
                ServeConfig(verdict_every=4), metrics=MetricsRegistry()
            )
            host, port = await service.start()
            try:
                return await stream_tenant(
                    host, port, "t", CHANNELS, observations
                )
            finally:
                await service.stop()

        hot = run(scraped())
        cold = run(unscraped())
        reference = reference_report(observations)
        assert hot.report.to_dict() == cold.report.to_dict()
        assert hot.report.to_dict() == reference.to_dict()
