"""Wire protocol: framing, round-trips, strict validation, error split."""

import asyncio
import struct

import numpy as np
import pytest

from repro.core.report import DetectionReport, UnitVerdict
from repro.errors import FrameDecodeError, WireError
from repro.pipeline import ChannelKind, ChannelSpec, QuantumObservation
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    Bye,
    Credit,
    ErrorFrame,
    Goodbye,
    Hello,
    ObsFrame,
    VerdictFrame,
    Welcome,
    decode_payload,
    encode_frame,
    parse_frame,
    read_frame,
)

CHANNELS = (
    ChannelSpec(name="membus", kind=ChannelKind.BURST, dt=1000),
    ChannelSpec(name="cache", kind=ChannelKind.CONFLICT),
)


def _obs(quantum=3):
    return QuantumObservation(
        quantum=quantum,
        t0=quantum * 100,
        t1=(quantum + 1) * 100,
        counts={"membus": np.array([0, 7, 0], dtype=np.int64)},
    )


def _verdict(detected=False):
    return UnitVerdict(
        unit="membus",
        method="burst",
        detected=detected,
        quanta_analyzed=9,
        max_likelihood_ratio=0.4,
    )


ALL_FRAMES = [
    Hello(tenant="acme", channels=CHANNELS),
    ObsFrame(seq=12, observation=_obs()),
    Bye(),
    Welcome(credits=32, verdict_every=8),
    Credit(credits=4),
    VerdictFrame(quantum=7, verdicts=(_verdict(),), health="degraded"),
    ErrorFrame(code="decode", message="bad frame", fatal=False),
    Goodbye(
        report=DetectionReport(verdicts=(_verdict(True),)),
        received=40,
        shed=3,
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "frame", ALL_FRAMES, ids=[f.type for f in ALL_FRAMES]
    )
    def test_encode_decode_identity(self, frame):
        data = encode_frame(frame)
        (length,) = struct.unpack(">I", data[:4])
        assert length == len(data) - 4
        back = decode_payload(data[4:])
        if frame.type == "obs":
            assert back.seq == frame.seq
            np.testing.assert_array_equal(
                back.observation.counts["membus"],
                frame.observation.counts["membus"],
            )
        elif frame.type == "goodbye":
            assert back.report == frame.report
            assert (back.received, back.shed) == (
                frame.received, frame.shed,
            )
        else:
            assert back == frame


class TestStrictness:
    def test_unknown_frame_type(self):
        with pytest.raises(FrameDecodeError, match="unknown type"):
            parse_frame({"type": "sparkle"})

    def test_non_object_frame(self):
        with pytest.raises(FrameDecodeError, match="JSON object"):
            parse_frame([1, 2])

    def test_unknown_field(self):
        payload = Bye().to_payload()
        payload["extra"] = 1
        with pytest.raises(FrameDecodeError, match="unknown field"):
            parse_frame(payload)

    def test_missing_field(self):
        payload = Welcome(credits=8, verdict_every=4).to_payload()
        del payload["credits"]
        with pytest.raises(FrameDecodeError, match="missing required"):
            parse_frame(payload)

    def test_wrong_proto(self):
        payload = Hello(tenant="a", channels=CHANNELS).to_payload()
        payload["proto"] = "repro.serve.wire/v2"
        with pytest.raises(FrameDecodeError, match="protocol"):
            parse_frame(payload)

    def test_empty_channels(self):
        payload = Hello(tenant="a", channels=CHANNELS).to_payload()
        payload["channels"] = []
        with pytest.raises(FrameDecodeError, match="non-empty"):
            parse_frame(payload)

    def test_duplicate_channels(self):
        dup = (CHANNELS[0], CHANNELS[0])
        payload = Hello(tenant="a", channels=dup).to_payload()
        with pytest.raises(FrameDecodeError, match="duplicate"):
            parse_frame(payload)

    def test_negative_seq(self):
        payload = ObsFrame(seq=0, observation=_obs()).to_payload()
        payload["seq"] = -1
        with pytest.raises(FrameDecodeError, match="non-negative"):
            parse_frame(payload)

    def test_bad_nested_observation(self):
        payload = ObsFrame(seq=0, observation=_obs()).to_payload()
        payload["observation"]["extra"] = True
        with pytest.raises(FrameDecodeError, match="obs.observation"):
            parse_frame(payload)

    def test_goodbye_detected_mismatch(self):
        frame = Goodbye(
            report=DetectionReport(verdicts=(_verdict(True),)),
            received=1,
        )
        payload = frame.to_payload()
        payload["report"]["any_detected"] = False
        with pytest.raises(FrameDecodeError, match="disagrees"):
            parse_frame(payload)

    def test_credit_zero_rejected(self):
        payload = Credit(credits=1).to_payload()
        payload["credits"] = 0
        with pytest.raises(FrameDecodeError, match="> 0"):
            parse_frame(payload)

    def test_oversized_encode_rejected(self):
        big = ErrorFrame(code="x", message="y" * 64, fatal=False)
        with pytest.raises(WireError, match="cap"):
            encode_frame(big, max_frame_bytes=32)


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestStreamFraming:
    def run(self, coro):
        return asyncio.run(coro)

    def test_stream_of_frames_then_clean_eof(self):
        data = encode_frame(Bye()) + encode_frame(Credit(credits=2))

        async def scenario():
            reader = _reader_with(data)
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = self.run(scenario())
        assert isinstance(first, Bye)
        assert second == Credit(credits=2)
        assert third is None

    def test_truncated_header_is_fatal(self):
        async def scenario():
            return await read_frame(_reader_with(b"\x00\x00"))

        with pytest.raises(WireError, match="mid-header"):
            self.run(scenario())

    def test_truncated_body_is_fatal(self):
        data = encode_frame(Bye())[:-3]

        async def scenario():
            return await read_frame(_reader_with(data))

        with pytest.raises(WireError, match="mid-frame"):
            self.run(scenario())

    def test_absurd_length_prefix_is_fatal(self):
        data = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x"

        async def scenario():
            return await read_frame(_reader_with(data))

        with pytest.raises(WireError, match="outside"):
            self.run(scenario())

    def test_garbage_body_is_recoverable(self):
        """A garbage body raises FrameDecodeError but leaves the stream
        aligned: the next frame still parses."""
        garbage = b"\xff{not json"
        data = (
            struct.pack(">I", len(garbage))
            + garbage
            + encode_frame(Credit(credits=3))
        )

        async def scenario():
            reader = _reader_with(data)
            try:
                await read_frame(reader)
            except FrameDecodeError:
                recovered = await read_frame(reader)
                return recovered
            raise AssertionError("garbage body did not raise")

        assert self.run(scenario()) == Credit(credits=3)

    def test_zero_length_frame_is_fatal(self):
        data = struct.pack(">I", 0)

        async def scenario():
            return await read_frame(_reader_with(data))

        with pytest.raises(WireError, match="outside"):
            self.run(scenario())


class TestTraceContextField:
    """The optional ``trace`` field on hello/obs frames (PR 10).

    Older v1 peers never send it; newer peers may. Both directions
    must round-trip, absence must stay absent on the wire, and the
    strict validator must still reject junk inside the sub-object.
    """

    def test_absent_by_default(self):
        assert "trace" not in Hello(tenant="a", channels=CHANNELS).to_payload()
        assert "trace" not in ObsFrame(seq=0, observation=_obs()).to_payload()

    def test_hello_round_trip(self):
        from repro.obs.tracing import TraceContext

        frame = Hello(
            tenant="a", channels=CHANNELS,
            trace=TraceContext("deadbeefdeadbeef", "cafe0123"),
        )
        back = decode_payload(encode_frame(frame)[4:])
        assert back.trace == frame.trace

    def test_obs_round_trip_without_parent(self):
        from repro.obs.tracing import TraceContext

        frame = ObsFrame(
            seq=3, observation=_obs(), trace=TraceContext("deadbeefdeadbeef"),
        )
        payload = frame.to_payload()
        assert payload["trace"] == {"trace_id": "deadbeefdeadbeef"}
        back = parse_frame(payload)
        assert back.trace == frame.trace

    def test_trace_rejects_unknown_keys(self):
        payload = Hello(tenant="a", channels=CHANNELS).to_payload()
        payload["trace"] = {"trace_id": "abc", "span_kind": "client"}
        with pytest.raises(FrameDecodeError, match="unknown field"):
            parse_frame(payload)

    def test_trace_rejects_empty_id(self):
        payload = ObsFrame(seq=0, observation=_obs()).to_payload()
        payload["trace"] = {"trace_id": ""}
        with pytest.raises(FrameDecodeError):
            parse_frame(payload)

    def test_trace_rejects_non_mapping(self):
        payload = ObsFrame(seq=0, observation=_obs()).to_payload()
        payload["trace"] = "deadbeef"
        with pytest.raises(FrameDecodeError):
            parse_frame(payload)
