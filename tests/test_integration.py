"""End-to-end integration tests: the paper's headline claims in miniature.

Each test runs a full pipeline — machine, channel (or benign pair), noise,
CC-Hunter — and checks the final verdict, exactly like the benchmarks but
at test-friendly scale.
"""

import pytest

from repro import (
    AuditAPI,
    AuditUnit,
    CacheCovertChannel,
    CCHunter,
    CCHunterDaemon,
    ChannelConfig,
    DividerCovertChannel,
    Machine,
    MemoryBusCovertChannel,
    Message,
    User,
    background_noise_processes,
)
from repro.workloads import workload_process
from repro.workloads.spec import bzip2, gobmk


class TestChannelDetection:
    def test_membus_channel_detected_with_noise(self):
        machine = Machine(seed=11)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        message = Message.from_bits([1, 0, 1, 1, 0, 1, 0, 0, 1, 1] * 3)
        channel = MemoryBusCovertChannel(
            machine, ChannelConfig(message=message, bandwidth_bps=100.0)
        )
        channel.deploy(trojan_ctx=0, spy_ctx=2)
        quanta = channel.quanta_needed()
        background_noise_processes(
            machine, n_quanta=quanta, avoid_contexts=(0, 2), seed=11
        )
        machine.run_quanta(quanta)
        verdict = hunter.report().verdict_for("membus")
        assert verdict.detected
        assert channel.bit_error_rate() == 0.0

    def test_divider_channel_detected_with_noise(self):
        machine = Machine(seed=12)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.DIVIDER, core=0)
        message = Message.random(30, 12)
        channel = DividerCovertChannel(
            machine, ChannelConfig(message=message, bandwidth_bps=100.0)
        )
        channel.deploy(core=0)
        quanta = channel.quanta_needed()
        background_noise_processes(
            machine, n_quanta=quanta, avoid_contexts=(0, 1), seed=12
        )
        machine.run_quanta(quanta)
        assert hunter.report().verdicts[0].detected

    def test_cache_channel_detected_with_noise(self):
        machine = Machine(seed=13)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.CACHE)
        message = Message.random(10, 13)
        channel = CacheCovertChannel(
            machine,
            ChannelConfig(message=message, bandwidth_bps=100.0),
            n_sets_total=128,
        )
        channel.deploy()
        quanta = channel.quanta_needed()
        background_noise_processes(
            machine, n_quanta=quanta, avoid_contexts=(0, 2), seed=13
        )
        machine.run_quanta(quanta)
        verdict = hunter.report().verdicts[0]
        assert verdict.detected
        # Oscillation wavelength near the set count.
        assert verdict.dominant_period == pytest.approx(128, rel=0.25)

    def test_detection_robust_across_seeds(self):
        for seed in (21, 22, 23):
            machine = Machine(seed=seed)
            hunter = CCHunter(machine)
            hunter.audit(AuditUnit.MEMORY_BUS)
            channel = MemoryBusCovertChannel(
                machine,
                ChannelConfig(
                    message=Message.random(20, seed), bandwidth_bps=100.0
                ),
            )
            channel.deploy(trojan_ctx=0, spy_ctx=2)
            quanta = channel.quanta_needed()
            background_noise_processes(
                machine, n_quanta=quanta, avoid_contexts=(0, 2), seed=seed
            )
            machine.run_quanta(quanta)
            assert hunter.report().verdicts[0].detected, f"seed {seed}"


class TestBenignWorkloads:
    def test_no_false_alarm_on_benign_pair(self):
        machine = Machine(seed=31)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        hunter.audit(AuditUnit.DIVIDER, core=0)
        machine.spawn(workload_process(gobmk, machine, 4, seed=1), ctx=0)
        machine.spawn(workload_process(bzip2, machine, 4, seed=2), ctx=1)
        machine.run_quanta(4)
        report = hunter.report()
        assert not report.any_detected


class TestFullStack:
    def test_daemon_and_api_pipeline(self):
        """Administrator programs the auditor through the OS API; the
        daemon accounts per-quantum analyses and reports."""
        machine = Machine(seed=41)
        hunter = CCHunter(machine)
        api = AuditAPI(hunter)
        api.request_audit(User("root", is_admin=True), AuditUnit.MEMORY_BUS)
        daemon = CCHunterDaemon(machine, hunter)
        daemon.place_monitor(audited_cores={0})

        message = Message.random(30, 41)
        channel = MemoryBusCovertChannel(
            machine, ChannelConfig(message=message, bandwidth_bps=100.0)
        )
        channel.deploy(trojan_ctx=0, spy_ctx=2)
        machine.run_quanta(channel.quanta_needed())

        assert daemon.stats.quanta_observed == channel.quanta_needed()
        assert daemon.report().any_detected
        assert daemon.overhead_fraction() < 0.05

    def test_simultaneous_bus_and_divider_audit(self):
        """One auditor watches two units; only the attacked one alarms."""
        machine = Machine(seed=51)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        hunter.audit(AuditUnit.DIVIDER, core=0)
        channel = MemoryBusCovertChannel(
            machine,
            ChannelConfig(message=Message.random(20, 51),
                          bandwidth_bps=100.0),
        )
        channel.deploy(trojan_ctx=0, spy_ctx=2)
        machine.run_quanta(channel.quanta_needed())
        report = hunter.report()
        assert report.verdict_for("membus").detected
        assert not report.verdict_for("divider(core 0)").detected


class TestSuperSecureMode:
    def test_three_unit_audit_with_expanded_auditor(self):
        """Super-secure environments can monitor every unit at once by
        provisioning more monitor slots (Section V-A)."""
        from repro.config import AuditorConfig
        from repro.hardware.auditor import CCAuditor

        machine = Machine(seed=61)
        hunter = CCHunter(
            machine, auditor=CCAuditor(AuditorConfig(n_monitors=9))
        )
        hunter.audit(AuditUnit.MEMORY_BUS)
        for core in range(4):
            hunter.audit(AuditUnit.DIVIDER, core=core)
            hunter.audit(AuditUnit.MULTIPLIER, core=core)
        assert hunter.monitors_in_use == 9

        channel = DividerCovertChannel(
            machine,
            ChannelConfig(message=Message.random(20, 61),
                          bandwidth_bps=100.0),
        )
        channel.deploy(core=2)
        machine.run_quanta(channel.quanta_needed())
        report = hunter.report()
        assert report.verdict_for("divider(core 2)").detected
        assert not report.verdict_for("divider(core 0)").detected
        assert not report.verdict_for("multiplier(core 2)").detected


class TestOfflineForensics:
    def test_record_analyze_loop(self, tmp_path):
        """Record online with the two-monitor auditor, then analyze every
        unit offline from the archive."""
        from repro.traces import analyze_traces, export_traces, load_traces

        machine = Machine(seed=71)
        channel = MemoryBusCovertChannel(
            machine,
            ChannelConfig(message=Message.random(30, 71),
                          bandwidth_bps=100.0),
        )
        channel.deploy(trojan_ctx=0, spy_ctx=2)
        machine.run_quanta(channel.quanta_needed())
        path = tmp_path / "forensics.npz"
        export_traces(machine, path)
        report = analyze_traces(load_traces(path))
        assert report.verdict_for("membus").detected


class TestConcurrentChannels:
    def test_two_channels_two_monitors(self):
        """Both auditor slots working at once: a bus channel and a divider
        channel run concurrently and each monitor convicts its own."""
        machine = Machine(seed=81)
        hunter = CCHunter(machine)
        hunter.audit(AuditUnit.MEMORY_BUS)
        hunter.audit(AuditUnit.DIVIDER, core=1)

        bus_channel = MemoryBusCovertChannel(
            machine,
            ChannelConfig(message=Message.random(30, 81),
                          bandwidth_bps=100.0),
        )
        bus_channel.deploy(trojan_ctx=0, spy_ctx=4)
        div_channel = DividerCovertChannel(
            machine,
            ChannelConfig(message=Message.random(30, 82),
                          bandwidth_bps=100.0),
        )
        div_channel.deploy(core=1)

        quanta = max(bus_channel.quanta_needed(), div_channel.quanta_needed())
        machine.run_quanta(quanta)

        report = hunter.report()
        assert report.verdict_for("membus").detected
        assert report.verdict_for("divider(core 1)").detected
        assert bus_channel.bit_error_rate() == 0.0
        assert div_channel.bit_error_rate() == 0.0
